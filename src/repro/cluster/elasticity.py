"""Elastic cluster topology: epoch-fenced scale, split, drift re-tune.

PR 7 froze the cluster's topology at construction; this module makes it
a *runtime* variable while keeping every invariant the frozen cluster
already proved.  The paper's predictor is cheap enough to re-run
online, so per-shard predicted cost can drive topology decisions --
scale-out/in, shard splitting on cost divergence, workload-drift
re-tuning -- instead of static placement.  Four mechanisms compose:

1. **epoch fence** -- every topology change publishes a whole new
   :class:`~.routing.RoutingTable` under a strictly larger epoch.
   In-flight requests admitted under the old epoch drain to completion
   against the geometry they captured at submit (the service binds the
   tenant object into the queue item, so a straddling request answers
   bit-identically to the pre-change cluster); dispatches pinned to the
   old epoch are refused with a typed
   :class:`~repro.errors.StaleRoutingEpochError`.  The ordering of
   every change is *fence, drain, fold*: install the new table, drain
   the router (a drained leg has settled its ledger), then fold
   retiring ledgers -- which is what makes the op books exact across
   the boundary.
2. **scale-out/in** -- :meth:`TopologyManager.add_replica` warms the
   new replica's artifacts over the anti-entropy peer-bytes path
   (verify a live owner's copy, adopt its exact bytes, register as a
   verified hit: zero refits when any verified peer exists);
   :meth:`TopologyManager.remove_replica` fences, drains, and retires
   the replica's ledgers exactly as a kill would, so nothing vanishes
   from the accounting.
3. **shard split / merge / re-tune** -- successor shards get *fresh*
   ids (ids are never reused: a reused id would collide with the
   retired shard's artifact key and its ledger history), each
   successor is re-tuned on its own workload slice -- a split's halves
   on the seeded re-partition of the parent's slice, a merge's single
   child on the parents' *concatenated* slices -- and the old shards'
   ledgers fold into the owners' retired books under the old ids.
   ``merge_when < split_when`` is enforced so the two detectors leave
   a hysteresis band between them, and a merge whose re-tuned cost
   would immediately re-trip ``split_when`` is refused before the
   fence.
4. **drift detection + governed reorganization** -- a
   :class:`DriftDetector` compares live per-shard query centers
   against the partitioner's frozen centroids and proposes re-tunes;
   every split/re-tune is admitted against a reorg
   :class:`~repro.runtime.budget.Budget` through a
   :class:`~repro.runtime.governor.Governor` (``require_ops`` up
   front, actual ``tuning_io_ops`` attributed after), so
   reorganization cost is charged like any other I/O and an exhausted
   budget refuses the change with a typed error *before* any surgery.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..disk.accounting import IOCost
from ..errors import (
    ArtifactCorruptError,
    InputValidationError,
    PredictionError,
)
from ..runtime.budget import Budget
from ..runtime.governor import Governor
from ..workload.queries import KNNWorkload, exact_knn_radii
from .partition import WorkloadPartition, partition_workload
from .replicas import shard_tenant
from .routing import RoutingTable
from .tuning import ShardConfig, tune_shard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import PredictionCluster

__all__ = ["DriftDetector", "DriftProposal", "TopologyManager"]

#: how long a topology change waits for the old epoch's legs to drain
_TOPOLOGY_DRAIN_S = 30.0

#: how many recent query centers the drift detector retains per shard
#: (the re-tune workload is synthesized from these)
_DRIFT_WINDOW = 256


@dataclass(frozen=True)
class DriftProposal:
    """One shard whose live queries have walked away from its centroid.

    ``drift`` is the distance between the live query center and the
    partitioner's frozen centroid, normalized by the mean pairwise
    distance between frozen centroids (so the threshold is scale-free).
    """

    shard: int
    drift: float
    observations: int
    action: str = "re-tune"

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "drift": round(self.drift, 4),
            "observations": self.observations,
            "action": self.action,
        }


class DriftDetector:
    """Live query centers vs the partitioner's frozen per-shard centers.

    The partition routes a query to its nearest *frozen* centroid; if
    the queries actually arriving at a shard concentrate far from that
    centroid, the shard is serving a workload its configuration was
    never tuned for.  The detector accumulates per-shard running sums
    of observed query centers, reports normalized drift, and proposes a
    re-tune once drift crosses ``threshold`` with at least
    ``min_observations`` queries behind it (a handful of outliers must
    not trigger surgery).  ``freeze`` re-anchors a shard after a
    topology change and clears its observations -- drift is always
    measured against the *current* topology.
    """

    def __init__(self, *, threshold: float = 0.35,
                 min_observations: int = 24):
        if threshold <= 0:
            raise InputValidationError(
                f"drift threshold must be positive, got {threshold}"
            )
        self.threshold = threshold
        self.min_observations = int(min_observations)
        self._frozen: dict[int, np.ndarray] = {}
        self._sums: dict[int, np.ndarray] = {}
        self._counts: Counter = Counter()
        self._recent: dict[int, deque] = {}
        self._scale = 1.0
        self._degenerate = False
        self._lock = threading.Lock()

    def freeze(self, centers: dict[int, np.ndarray]) -> None:
        """(Re-)anchor shards at their frozen centroids.

        Shards present in ``centers`` get the new anchor and a cleared
        observation window; shards absent from ``centers`` but
        previously frozen are dropped (they were retired).
        """
        with self._lock:
            self._frozen = {
                shard: np.asarray(c, dtype=np.float64).copy()
                for shard, c in centers.items()
            }
            for shard in list(self._sums):
                if shard not in self._frozen:
                    del self._sums[shard]
                    del self._recent[shard]
                    del self._counts[shard]
            for shard in centers:
                self._sums[shard] = np.zeros_like(self._frozen[shard])
                self._recent[shard] = deque(maxlen=_DRIFT_WINDOW)
                self._counts[shard] = 0
            anchors = list(self._frozen.values())
            if len(anchors) >= 2:
                stack = np.stack(anchors)
                diff = stack[:, None, :] - stack[None, :, :]
                dist = np.sqrt(np.einsum("abd,abd->ab", diff, diff))
                off_diag = dist[~np.eye(len(anchors), dtype=bool)]
                mean = float(off_diag.mean())
                # All centers coinciding is a *degenerate* partition:
                # there is no inter-centroid scale to normalize against,
                # so drift is defined as 0.0 (see :meth:`drift`) rather
                # than dividing by zero or an arbitrary unit scale.
                self._degenerate = mean <= 0.0
                self._scale = mean if mean > 0 else 1.0
            else:
                self._degenerate = False
                self._scale = 1.0

    def observe(self, shard: int, queries: np.ndarray) -> None:
        """Fold a request's query centers into the shard's live stats."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        with self._lock:
            if shard not in self._frozen:
                return  # unknown/retired shard: nothing to compare to
            if queries.shape[1] != self._frozen[shard].shape[0]:
                return  # dimensionality mismatch cannot be drift
            self._sums[shard] += queries.sum(axis=0)
            self._counts[shard] += queries.shape[0]
            self._recent[shard].extend(queries)

    def live_center(self, shard: int) -> np.ndarray | None:
        with self._lock:
            count = self._counts.get(shard, 0)
            if count == 0:
                return None
            return self._sums[shard] / count

    def recent_queries(self, shard: int) -> np.ndarray:
        with self._lock:
            window = self._recent.get(shard)
            if not window:
                return np.empty((0, 0))
            return np.stack(list(window))

    def drift(self, shard: int) -> float:
        """Normalized displacement of the live center (0.0 until
        ``min_observations`` queries have been seen)."""
        with self._lock:
            count = self._counts.get(shard, 0)
            if count < self.min_observations:
                return 0.0
            if self._degenerate:
                # Every frozen center coincides: displacement has no
                # scale to be measured against, and a partition whose
                # centroids are identical routes arbitrarily anyway --
                # drift against it is meaningless, explicitly 0.0.
                return 0.0
            live = self._sums[shard] / count
            return float(
                np.linalg.norm(live - self._frozen[shard]) / self._scale
            )

    def proposals(self) -> list[DriftProposal]:
        """Every shard whose drift has crossed the threshold."""
        out = []
        for shard in sorted(self._frozen):
            value = self.drift(shard)
            if value > self.threshold:
                out.append(DriftProposal(
                    shard=shard, drift=value,
                    observations=int(self._counts[shard]),
                ))
        return out

    def report(self) -> dict:
        with self._lock:
            shards = sorted(self._frozen)
        return {
            "threshold": self.threshold,
            "min_observations": self.min_observations,
            "degenerate": self._degenerate,
            "shards": {
                shard: {
                    "observations": int(self._counts.get(shard, 0)),
                    "drift": round(self.drift(shard), 4),
                }
                for shard in shards
            },
        }


class TopologyManager:
    """Runtime topology surgery for one :class:`PredictionCluster`.

    All four operations (add/remove replica, split, re-tune) follow the
    same fence-drain-fold protocol and serialize under one lock --
    concurrent *requests* race the fence safely (the router snapshots
    the table per dispatch), but two concurrent topology changes would
    race each other's books.
    """

    def __init__(
        self,
        cluster: "PredictionCluster",
        *,
        split_when: float = 3.0,
        merge_when: float = 1.5,
        drift_threshold: float = 0.35,
        min_drift_observations: int = 24,
        reorg_budget: Budget | None = None,
    ):
        if split_when <= 1.0:
            raise InputValidationError(
                f"split_when must exceed 1.0 (it is a cost *ratio* "
                f"against the sibling median), got {split_when}"
            )
        if not 0.0 < merge_when < split_when:
            raise InputValidationError(
                f"merge_when must lie in (0, split_when={split_when}): "
                f"the gap between the two thresholds is the hysteresis "
                f"band that keeps split and merge from flapping; got "
                f"{merge_when}"
            )
        self.cluster = cluster
        self.split_when = split_when
        self.merge_when = merge_when
        self.governor = Governor(reorg_budget or Budget())
        self.drift = DriftDetector(
            threshold=drift_threshold,
            min_observations=min_drift_observations,
        )
        self.events: list[dict] = []
        self._lock = threading.Lock()
        self.drift.freeze(self._current_centers())

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _current_centers(self) -> dict[int, np.ndarray]:
        cluster = self.cluster
        return {
            cluster._row_to_shard[row]: cluster.partition.centroids[row]
            for row in range(len(cluster._row_to_shard))
        }

    def _install(self, owners: dict, costs: dict) -> RoutingTable:
        """Publish a topology change: new table, strictly larger epoch."""
        old = self.cluster.router.table
        table = RoutingTable(
            version=old.version + 1,
            epoch=old.epoch + 1,
            owners=owners,
            costs=costs,
        )
        self.cluster.router.install_table(table)
        return table

    def _ordered(self, placed: list[str], cost: dict[str, float]
                 ) -> tuple[str, ...]:
        return tuple(sorted(placed, key=lambda n: (cost[n], n)))

    def _charge(self, phase: str, ops: int) -> None:
        """Attribute actual reorganization I/O to the reorg budget."""
        self.governor.observe(phase, IOCost(seeks=int(ops)))
        self.governor.end_attempt()

    def _warm_shard(self, replica, shard: int) -> dict:
        """Warm one shard onto ``replica`` via the peer-bytes path.

        Walks the shard's current owners for a copy that passes full
        verification; the first verified copy's exact bytes are adopted
        (the anti-entropy mechanism, reused), so the subsequent
        registration is a warm hit and costs zero refits.  A corrupt
        donor is skipped, not trusted -- mid-copy corruption of a
        warming artifact downgrades to the next donor or, when no
        donor verifies, to one deterministic fit.
        """
        cluster = self.cluster
        key = shard_tenant(shard)
        via = "fit"
        for owner in cluster.router.table.owners_of(shard):
            peer = cluster.replicas.get(owner)
            if peer is None or peer.down or peer.service is None:
                continue
            store = peer.service.store
            try:
                store.verify(key)
            except ArtifactCorruptError:
                continue  # corrupt donor: never warm from it
            data = peer.artifact_path(shard).read_bytes()
            replica.adopt_shard_bytes(shard, data)
            via = f"peer:{owner}"
            break
        replica.register_shard(
            shard, cluster.shard_points[shard],
            cluster.shard_configs[shard], fit_seed=cluster.fit_seed,
        )
        return {"shard": shard, "via": via}

    # ------------------------------------------------------------------
    # Scale-out / scale-in
    # ------------------------------------------------------------------

    def add_replica(
        self,
        name: str | None = None,
        *,
        latency_factor: float = 1.0,
        shards: list[int] | None = None,
    ) -> dict:
        """Scale out: build, warm, and route to a new replica.

        The replica is constructed, warmed shard by shard over the
        peer-bytes path, registered, and only then published as an
        owner under a new epoch -- requests never observe a
        half-warmed owner.  Returns the warm report (``via`` per
        shard: ``peer:<donor>`` or ``fit``).
        """
        with self._lock:
            cluster = self.cluster
            if name is None:
                taken = set(cluster.replicas) | set(cluster.retired_replicas)
                index = len(taken)
                while f"replica-{index}" in taken:
                    index += 1
                name = f"replica-{index}"
            elif (name in cluster.replicas
                    or name in cluster.retired_replicas):
                raise InputValidationError(
                    f"replica name {name!r} is already "
                    f"{'retired' if name in cluster.retired_replicas else 'live'}"
                )
            active = cluster.active_shards()
            if shards is None:
                shards = active
            else:
                shards = sorted(set(int(s) for s in shards))
                unknown = [s for s in shards if s not in active]
                if unknown:
                    raise InputValidationError(
                        f"cannot place unknown shard(s) {unknown}; "
                        f"active shards are {active}"
                    )
            replica = cluster._new_replica(name, latency_factor)
            warmed = [self._warm_shard(replica, shard) for shard in shards]
            cluster.replicas[name] = replica
            old = cluster.router.table
            owners = dict(old.owners)
            costs = {s: dict(c) for s, c in old.costs.items()}
            for shard in shards:
                cost = costs.setdefault(shard, {})
                cost[name] = (
                    cluster.shard_configs[shard].predicted_seconds
                    * latency_factor
                )
                placed = [n for n in owners.get(shard, ()) if n != name]
                placed.append(name)
                owners[shard] = self._ordered(placed, cost)
            table = self._install(owners, costs)
            report = {
                "replica": name,
                "epoch": table.epoch,
                "warmed": warmed,
                "refits": replica.service.store.rebuilds(),
            }
            self.events.append({"op": "add_replica", **report})
            return report

    def remove_replica(
        self, name: str, *, timeout_s: float = _TOPOLOGY_DRAIN_S
    ) -> dict:
        """Scale in: fence the replica out, drain, fold its ledgers.

        The new table (without the replica) is installed *first*, so no
        new leg can target it; the router then drains -- in-flight legs
        on the retiring replica run to completion and settle their
        ledgers -- and only then is the replica retired, folding its
        books exactly as :meth:`~.replicas.Replica.kill` does.  Refuses
        (typed) to remove the last owner of any shard.
        """
        with self._lock:
            cluster = self.cluster
            replica = cluster._replica(name)
            old = cluster.router.table
            for shard, owner_names in old.owners.items():
                survivors = [n for n in owner_names if n != name]
                if owner_names and not survivors:
                    raise InputValidationError(
                        f"cannot remove {name!r}: it is the last owner "
                        f"of shard {shard}"
                    )
            owners = {
                shard: tuple(n for n in owner_names if n != name)
                for shard, owner_names in old.owners.items()
            }
            costs = {
                shard: {n: c for n, c in cost.items() if n != name}
                for shard, cost in old.costs.items()
            }
            table = self._install(owners, costs)
            cluster.router.drain(timeout_s=timeout_s)
            replica.retire()
            del cluster.replicas[name]
            cluster.retired_replicas[name] = replica
            report = {
                "replica": name,
                "epoch": table.epoch,
                "retired_ops": {
                    int(s): int(v) for s, v in replica.retired_ops.items()
                },
            }
            self.events.append({"op": "remove_replica", **report})
            return report

    # ------------------------------------------------------------------
    # Shard surgery
    # ------------------------------------------------------------------

    def split_candidates(self) -> list[dict]:
        """Shards whose tuned predicted cost diverges from siblings.

        A shard is a candidate when its tuned ``predicted_seconds``
        exceeds ``split_when`` times the median of its siblings' --
        the predictor's own per-shard cost estimate driving topology,
        which is the point of having a cheap predictor.
        """
        cluster = self.cluster
        active = cluster.active_shards()
        if len(active) < 2:
            return []
        seconds = {
            s: cluster.shard_configs[s].predicted_seconds for s in active
        }
        out = []
        for shard in active:
            siblings = [v for s, v in seconds.items() if s != shard]
            baseline = float(np.median(siblings))
            if baseline > 0 and seconds[shard] / baseline >= self.split_when:
                out.append({
                    "shard": shard,
                    "ratio": round(seconds[shard] / baseline, 3),
                    "predicted_seconds": seconds[shard],
                })
        return out

    def merge_candidates(self) -> list[dict]:
        """Sibling pairs cheap enough to share one shard again.

        A pair is a candidate when the *sum* of both tuned
        ``predicted_seconds`` stays within ``merge_when`` times the
        median of the remaining siblings' -- i.e. even merged, the
        combined shard would sit well below the ``split_when`` ratio
        (``merge_when < split_when`` is enforced; the gap is the
        hysteresis band).  Pairs are greedily chosen cheapest-ratio
        first with no shard in two pairs.  The controller additionally
        requires a candidate to *persist* for a dwell window before it
        fires -- one cheap tuning snapshot must not trigger surgery.
        """
        cluster = self.cluster
        active = cluster.active_shards()
        # a pair is judged against the *other* shards' median; with
        # fewer than 3 active shards there is no external baseline and
        # candidacy would be self-referential (any balanced pair rates
        # ratio 2.0 against itself), so a 2-shard cluster never merges
        # autonomously -- folding to a single shard erases routing.
        if len(active) < 3:
            return []
        seconds = {
            s: cluster.shard_configs[s].predicted_seconds for s in active
        }
        pairs = []
        for i, a in enumerate(active):
            for b in active[i + 1:]:
                combined = seconds[a] + seconds[b]
                others = [v for s, v in seconds.items() if s not in (a, b)]
                baseline = float(np.median(others))
                if baseline > 0 and combined / baseline <= self.merge_when:
                    pairs.append({
                        "pair": (a, b),
                        "ratio": round(combined / baseline, 3),
                        "combined_seconds": combined,
                    })
        pairs.sort(key=lambda p: (p["ratio"], p["pair"]))
        chosen: list[dict] = []
        used: set[int] = set()
        for pair in pairs:
            a, b = pair["pair"]
            if a in used or b in used:
                continue
            used.update((a, b))
            chosen.append(pair)
        return chosen

    def split_shard(
        self,
        shard: int,
        *,
        seed: int | None = None,
        timeout_s: float = _TOPOLOGY_DRAIN_S,
    ) -> tuple[int, int]:
        """Split one shard in two, each half re-tuned on its own slice.

        The parent's tuning slice is re-partitioned (seeded k-means,
        k=2), the parent's points follow the same child centroids, and
        each child is tuned on its own slice exactly as construction
        tuned the parent.  Children get fresh, never-reused shard ids;
        they are registered (one fit, peers adopt bytes) on the
        parent's owners *before* the fence, then the new table routes
        to them, the router drains, and the parent's ledgers fold into
        the owners' retired books under the parent id.  A request that
        straddles the handoff was admitted under the old epoch against
        the parent's captured tenant, so its answer is bit-identical
        to the pre-split cluster's.
        """
        with self._lock:
            return self._replace_shard(
                shard,
                n_children=2,
                seed=self.cluster.seed if seed is None else seed,
                workload=None,
                center=None,
                phase="split",
                timeout_s=timeout_s,
            )

    def re_tune_shard(
        self,
        shard: int,
        *,
        workload: KNNWorkload | None = None,
        center: np.ndarray | None = None,
        timeout_s: float = _TOPOLOGY_DRAIN_S,
    ) -> int:
        """Replace one shard with a freshly tuned successor (same data).

        ``workload`` is the slice to tune against (defaults to the
        shard's stored tuning slice); ``center`` re-anchors the
        shard's routing centroid (the drift path passes the live query
        center, so post-re-tune drift measures from the new anchor).
        Returns the successor's shard id.
        """
        with self._lock:
            (child,) = self._replace_shard(
                shard,
                n_children=1,
                seed=self.cluster.seed,
                workload=workload,
                center=center,
                phase="re-tune",
                timeout_s=timeout_s,
            )
            return child

    def _drift_workload(self, shard: int) -> KNNWorkload | None:
        """A tuning workload synthesized from the observed drifted
        queries: each recent query anchored to its nearest point of the
        shard's slice (tuning reads query points by id from the
        shard's own file), radii recomputed against the slice."""
        cluster = self.cluster
        recent = self.drift.recent_queries(shard)
        if recent.size == 0:
            return None
        points = cluster.shard_points[shard]
        if recent.shape[1] != points.shape[1]:
            return None
        diff = recent[:, None, :] - points[None, :, :]
        nearest = np.argmin(
            np.einsum("qnd,qnd->qn", diff, diff), axis=1
        ).astype(np.int64)
        k = cluster.tuning_slices[shard].k
        k = min(k, points.shape[0])
        radii = exact_knn_radii(points, points[nearest], k)
        return KNNWorkload(
            k=k, query_ids=nearest, queries=points[nearest], radii=radii,
        )

    def apply_drift_proposals(self) -> list[dict]:
        """Execute every pending drift proposal as a governed re-tune.

        Each fired proposal re-tunes the shard on a workload
        synthesized from the drifted queries actually observed and
        re-anchors its centroid at the live query center.  Returns one
        record per proposal (including refusals: an exhausted reorg
        budget refuses with the typed error recorded, topology
        unchanged).
        """
        applied = []
        for proposal in self.drift.proposals():
            record = proposal.as_dict()
            workload = self._drift_workload(proposal.shard)
            center = self.drift.live_center(proposal.shard)
            try:
                record["successor"] = self.re_tune_shard(
                    proposal.shard, workload=workload, center=center,
                )
            except (InputValidationError, PredictionError) as error:
                record["refused"] = type(error).__name__
                record["error"] = str(error)
            applied.append(record)
        return applied

    def _replace_shard(
        self,
        shard: int,
        *,
        n_children: int,
        seed: int,
        workload: KNNWorkload | None,
        center: np.ndarray | None,
        phase: str,
        timeout_s: float,
    ) -> tuple[int, ...]:
        """Common machinery of split (2 children) and re-tune (1).

        Caller holds ``self._lock``.
        """
        cluster = self.cluster
        row = cluster._row_of(shard)
        owner_names = cluster.router.table.owners_of(shard)
        if not owner_names:
            raise InputValidationError(
                f"shard {shard} has no owners to carry its successors"
            )
        base_workload = (
            workload if workload is not None
            else cluster.tuning_slices[shard]
        )
        parent_points = cluster.shard_points[shard]
        parent_locals = cluster._local_ids[shard]

        # --- admission: the reorg budget sees the change up front ----
        estimate = max(
            1,
            cluster.shard_configs[shard].tuning_io_ops * n_children,
        )
        self.governor.require_ops(estimate, phase=phase)

        # --- carve the children out of the parent --------------------
        if n_children == 1:
            point_half = np.zeros(parent_points.shape[0], dtype=np.int64)
            query_half = np.zeros(base_workload.n_queries, dtype=np.int64)
            centroids = [
                np.asarray(center, dtype=np.float64)
                if center is not None
                else cluster.partition.centroids[row].copy()
            ]
        else:
            if base_workload.n_queries < n_children:
                raise PredictionError(
                    f"shard {shard} has only {base_workload.n_queries} "
                    f"tuning queries; cannot split into {n_children}"
                )
            child_part = partition_workload(
                base_workload, n_children, seed=seed
            )
            point_half = child_part.shard_of(parent_points)
            query_half = child_part.assignments
            centroids = [child_part.centroids[h] for h in range(n_children)]

        from .cluster import _MIN_SHARD_POINTS
        children = []
        for half in range(n_children):
            idx = np.flatnonzero(point_half == half)
            q_mask = query_half == half
            if idx.size < _MIN_SHARD_POINTS or not np.any(q_mask):
                raise PredictionError(
                    f"splitting shard {shard} would create a sliver "
                    f"({idx.size} points, {int(np.count_nonzero(q_mask))} "
                    f"queries in half {half}); a geometry cannot be "
                    f"fitted on a sliver -- topology unchanged"
                )
            parent_to_child = {int(g): j for j, g in enumerate(idx)}
            try:
                child_qids = np.fromiter(
                    (parent_to_child[int(g)]
                     for g in base_workload.query_ids[q_mask]),
                    dtype=np.int64,
                    count=int(np.count_nonzero(q_mask)),
                )
            except KeyError as missing:
                raise InputValidationError(
                    f"tuning query id {missing.args[0]} of shard {shard} "
                    f"does not land in its own child's slice; re-tune "
                    f"workloads must be drawn from the shard's data"
                ) from None
            child_workload = KNNWorkload(
                k=base_workload.k,
                query_ids=child_qids,
                queries=base_workload.queries[q_mask],
                radii=base_workload.radii[q_mask],
            )
            children.append({
                "idx": idx,
                "points": parent_points[idx],
                "workload": child_workload,
                "centroid": centroids[half],
                "parent_to_child": parent_to_child,
            })

        # --- tune each child on its own slice, charging the budget ---
        base = cluster._next_shard_id
        charged = 0
        for offset, child in enumerate(children):
            config = tune_shard(
                base + offset, child["points"], child["workload"],
                memory=cluster.memory, page_sizes=cluster.page_sizes,
                base_disk=cluster.base_disk, method=cluster.tuning_method,
                seed=seed, kernel=cluster.kernel,
            )
            child["config"] = config
            charged += config.tuning_io_ops
        self._charge(phase, charged)

        # --- register children on the parent's owners ----------------
        # The first live owner fits once; every other owner adopts the
        # fitted bytes first, so registration is a verified hit --
        # at most one fit per child shard, cluster-wide.
        for offset, child in enumerate(children):
            child_id = base + offset
            donor = None
            for owner in owner_names:
                replica = cluster.replicas[owner]
                if replica.down or replica.service is None:
                    continue
                if donor is not None:
                    data = (
                        cluster.replicas[donor]
                        .artifact_path(child_id).read_bytes()
                    )
                    replica.adopt_shard_bytes(child_id, data)
                replica.register_shard(
                    child_id, child["points"], child["config"],
                    fit_seed=cluster.fit_seed,
                )
                if donor is None:
                    donor = owner
            if donor is None:
                raise InputValidationError(
                    f"no live owner of shard {shard} can carry its "
                    f"successors; restart an owner first"
                )
            cluster.shard_points[child_id] = child["points"]
            cluster.shard_configs[child_id] = child["config"]
            cluster.tuning_slices[child_id] = child["workload"]
            cluster._local_ids[child_id] = {
                g: child["parent_to_child"][local]
                for g, local in parent_locals.items()
                if local in child["parent_to_child"]
            }
        child_ids = tuple(base + i for i in range(n_children))
        cluster._next_shard_id += n_children

        # --- new partition geometry: successor centroids -------------
        new_centroids = cluster.partition.centroids.copy()
        new_centroids[row] = children[0]["centroid"]
        if n_children > 1:
            new_centroids = np.vstack(
                [new_centroids]
                + [c["centroid"][None, :] for c in children[1:]]
            )
        cluster._row_to_shard[row] = child_ids[0]
        cluster._row_to_shard.extend(child_ids[1:])
        probe = WorkloadPartition(
            centroids=new_centroids,
            assignments=np.zeros(0, dtype=np.int64),
        )
        cluster.partition = WorkloadPartition(
            centroids=new_centroids,
            assignments=probe.shard_of(cluster.tuning_workload.queries),
        )

        # --- fence, drain, fold --------------------------------------
        old = cluster.router.table
        owners = {
            s: o for s, o in old.owners.items() if s != shard
        }
        costs = {
            s: dict(c) for s, c in old.costs.items() if s != shard
        }
        # Only owners that actually registered the children (the live
        # ones) are routable for them -- a down parent owner never got
        # the successor tenants, and listing it would route to a
        # replica that will refuse the shard even after restarting.
        live_owners = [
            n for n in owner_names
            if not cluster.replicas[n].down
            and cluster.replicas[n].service is not None
        ]
        for offset, child in enumerate(children):
            child_id = base + offset
            cost = {
                name: child["config"].predicted_seconds
                * cluster.replicas[name].latency_factor
                for name in live_owners
            }
            owners[child_id] = self._ordered(live_owners, cost)
            costs[child_id] = cost
        table = self._install(owners, costs)
        cluster.router.drain(timeout_s=timeout_s)
        for owner in owner_names:
            replica = cluster.replicas.get(owner)
            if replica is not None:
                replica.retire_shard(shard)
        cluster.retired_shards[shard] = {
            "children": child_ids,
            "epoch": table.epoch,
            "reason": phase,
        }
        self.drift.freeze(self._current_centers())
        self.events.append({
            "op": phase,
            "shard": shard,
            "children": list(child_ids),
            "epoch": table.epoch,
            "charged_ops": charged,
        })
        return child_ids

    def merge_shards(
        self,
        a: int,
        b: int,
        *,
        timeout_s: float = _TOPOLOGY_DRAIN_S,
    ) -> int:
        """Merge two shards into one fresh successor -- split, inverted.

        The parents' tuning slices are concatenated (b's query ids
        re-anchored past a's points), the merged shard is re-tuned on
        the combined slice exactly as construction tuned each parent,
        and it gets a fresh never-reused id.  Admission is charged
        against the reorg budget *before* any surgery, and a merged
        configuration that would immediately re-trip ``split_when``
        against the surviving siblings is refused (typed) with the
        routing table untouched -- merging and promptly re-splitting is
        the flap the hysteresis band exists to prevent.  The handoff is
        the same fence-drain-fold as a split: the merged shard is
        registered on the union of the parents' live owners (one fit,
        peers adopt the donor's bytes), the new table lands under a
        strictly larger epoch, the router drains -- a straddling
        request admitted under the old epoch still answers
        bit-identically against the parent tenant it captured -- and
        both parents' ledgers fold into the owners' retired books.
        Returns the merged shard's id.
        """
        with self._lock:
            cluster = self.cluster
            if a == b:
                raise InputValidationError(
                    f"cannot merge shard {a} with itself"
                )
            row_a = cluster._row_of(a)
            row_b = cluster._row_of(b)
            table = cluster.router.table
            owners_a = table.owners_of(a)
            owners_b = table.owners_of(b)
            owner_names = list(owners_a)
            owner_names += [n for n in owners_b if n not in owner_names]

            points_a = cluster.shard_points[a]
            points_b = cluster.shard_points[b]
            n_a = points_a.shape[0]
            slice_a = cluster.tuning_slices[a]
            slice_b = cluster.tuning_slices[b]

            # --- admission: the reorg budget sees the merge up front --
            estimate = max(
                1,
                cluster.shard_configs[a].tuning_io_ops
                + cluster.shard_configs[b].tuning_io_ops,
            )
            self.governor.require_ops(estimate, phase="merge")

            # --- re-tune the merged shard on the combined slice -------
            merged_points = np.vstack([points_a, points_b])
            merged_workload = KNNWorkload(
                k=min(slice_a.k, slice_b.k),
                query_ids=np.concatenate(
                    [slice_a.query_ids, slice_b.query_ids + n_a]
                ),
                queries=np.vstack([slice_a.queries, slice_b.queries]),
                radii=np.concatenate([slice_a.radii, slice_b.radii]),
            )
            merged_id = cluster._next_shard_id
            config = tune_shard(
                merged_id, merged_points, merged_workload,
                memory=cluster.memory, page_sizes=cluster.page_sizes,
                base_disk=cluster.base_disk,
                method=cluster.tuning_method,
                seed=cluster.seed, kernel=cluster.kernel,
            )
            self._charge("merge", config.tuning_io_ops)

            # --- refuse a merge that would immediately re-trip --------
            survivors = [
                cluster.shard_configs[s].predicted_seconds
                for s in cluster.active_shards() if s not in (a, b)
            ]
            if survivors:
                baseline = float(np.median(survivors))
                if (baseline > 0
                        and config.predicted_seconds / baseline
                        >= self.split_when):
                    raise PredictionError(
                        f"merging shards {a}+{b} would re-trip "
                        f"split_when immediately (merged cost "
                        f"{config.predicted_seconds:.4g} is "
                        f"{config.predicted_seconds / baseline:.2f}x "
                        f"the sibling median, threshold "
                        f"{self.split_when:g}) -- topology unchanged"
                    )

            # --- register the merged shard on the parents' owners -----
            # One fit on the first live owner; every other owner adopts
            # the donor's exact bytes, so the merged artifact exists at
            # most one fit cluster-wide -- same contract as a split.
            donor = None
            for owner in owner_names:
                replica = cluster.replicas.get(owner)
                if replica is None or replica.down or replica.service is None:
                    continue
                if donor is not None:
                    data = (
                        cluster.replicas[donor]
                        .artifact_path(merged_id).read_bytes()
                    )
                    replica.adopt_shard_bytes(merged_id, data)
                replica.register_shard(
                    merged_id, merged_points, config,
                    fit_seed=cluster.fit_seed,
                )
                if donor is None:
                    donor = owner
            if donor is None:
                raise InputValidationError(
                    f"no live owner of shards {a}/{b} can carry their "
                    f"merged successor; restart an owner first"
                )
            cluster.shard_points[merged_id] = merged_points
            cluster.shard_configs[merged_id] = config
            cluster.tuning_slices[merged_id] = merged_workload
            merged_locals = dict(cluster._local_ids[a])
            for g, local in cluster._local_ids[b].items():
                # a global id present in both parents (both were sliver
                # shards serving the full dataset) keeps a's anchor --
                # the point values are identical either way
                merged_locals.setdefault(g, local + n_a)
            cluster._local_ids[merged_id] = merged_locals
            cluster._next_shard_id += 1

            # --- new partition geometry: one centroid for two rows ----
            n_b = points_b.shape[0]
            centroid = (
                n_a * cluster.partition.centroids[row_a]
                + n_b * cluster.partition.centroids[row_b]
            ) / (n_a + n_b)
            keep = [
                r for r in range(len(cluster._row_to_shard))
                if r not in (row_a, row_b)
            ]
            new_centroids = np.vstack(
                [cluster.partition.centroids[keep], centroid[None, :]]
            )
            cluster._row_to_shard = [
                cluster._row_to_shard[r] for r in keep
            ] + [merged_id]
            probe = WorkloadPartition(
                centroids=new_centroids,
                assignments=np.zeros(0, dtype=np.int64),
            )
            cluster.partition = WorkloadPartition(
                centroids=new_centroids,
                assignments=probe.shard_of(
                    cluster.tuning_workload.queries
                ),
            )

            # --- fence, drain, fold -----------------------------------
            old = cluster.router.table
            owners = {
                s: o for s, o in old.owners.items() if s not in (a, b)
            }
            costs = {
                s: dict(c) for s, c in old.costs.items() if s not in (a, b)
            }
            live_owners = [
                n for n in owner_names
                if cluster.replicas.get(n) is not None
                and not cluster.replicas[n].down
                and cluster.replicas[n].service is not None
            ]
            cost = {
                name: config.predicted_seconds
                * cluster.replicas[name].latency_factor
                for name in live_owners
            }
            owners[merged_id] = self._ordered(live_owners, cost)
            costs[merged_id] = cost
            new_table = self._install(owners, costs)
            cluster.router.drain(timeout_s=timeout_s)
            for parent, parent_owners in ((a, owners_a), (b, owners_b)):
                for owner in parent_owners:
                    replica = cluster.replicas.get(owner)
                    if replica is not None:
                        replica.retire_shard(parent)
                cluster.retired_shards[parent] = {
                    "children": (merged_id,),
                    "epoch": new_table.epoch,
                    "reason": "merge",
                }
            self.drift.freeze(self._current_centers())
            self.events.append({
                "op": "merge",
                "shards": [a, b],
                "children": [merged_id],
                "epoch": new_table.epoch,
                "charged_ops": config.tuning_io_ops,
            })
            return merged_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def proposals(self) -> dict:
        return {
            "split": self.split_candidates(),
            "merge": self.merge_candidates(),
            "re_tune": [p.as_dict() for p in self.drift.proposals()],
        }

    def report(self) -> dict:
        return {
            "split_when": self.split_when,
            "merge_when": self.merge_when,
            "events": list(self.events),
            "drift": self.drift.report(),
            "reorg": self.governor.report(),
            "proposals": self.proposals(),
        }
