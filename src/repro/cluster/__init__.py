"""Sharded prediction cluster: similarity partitioning, per-shard
tuning, replica failover, failure-aware routing, anti-entropy repair."""

from .chaos import (
    ClusterChaosOutcome,
    ClusterChaosScenario,
    assert_cluster_invariant,
    run_cluster_chaos,
)
from .cluster import ClusterPrediction, PredictionCluster
from .loadtest import ClusterLoadTestResult, run_cluster_loadtest
from .partition import WorkloadPartition, partition_workload
from .replicas import Replica, shard_tenant
from .routing import ClusterResponse, Router, RoutingTable
from .tuning import ShardConfig, tune_shard

__all__ = [
    "ClusterChaosOutcome",
    "ClusterChaosScenario",
    "ClusterLoadTestResult",
    "ClusterPrediction",
    "ClusterResponse",
    "PredictionCluster",
    "Replica",
    "Router",
    "RoutingTable",
    "ShardConfig",
    "WorkloadPartition",
    "assert_cluster_invariant",
    "partition_workload",
    "run_cluster_chaos",
    "run_cluster_loadtest",
    "shard_tenant",
    "tune_shard",
]
