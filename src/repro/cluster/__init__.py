"""Sharded prediction cluster: similarity partitioning, per-shard
tuning, replica failover, failure-aware routing, anti-entropy repair,
and elastic topology (epoch-fenced scale, split, drift re-tune)."""

from .chaos import (
    ClusterChaosOutcome,
    ClusterChaosScenario,
    assert_cluster_invariant,
    run_cluster_chaos,
)
from .cluster import ClusterPrediction, PredictionCluster
from .elasticity import DriftDetector, DriftProposal, TopologyManager
from .loadtest import (
    ClusterLoadTestResult,
    ElasticityLoadTestResult,
    run_cluster_loadtest,
    run_elasticity_loadtest,
)
from .partition import WorkloadPartition, partition_workload
from .replicas import Replica, shard_tenant
from .routing import ClusterResponse, Router, RoutingTable
from .tuning import ShardConfig, tune_shard

__all__ = [
    "ClusterChaosOutcome",
    "ClusterChaosScenario",
    "ClusterLoadTestResult",
    "ClusterPrediction",
    "ClusterResponse",
    "DriftDetector",
    "DriftProposal",
    "ElasticityLoadTestResult",
    "PredictionCluster",
    "Replica",
    "Router",
    "RoutingTable",
    "ShardConfig",
    "TopologyManager",
    "WorkloadPartition",
    "assert_cluster_invariant",
    "partition_workload",
    "run_cluster_chaos",
    "run_cluster_loadtest",
    "run_elasticity_loadtest",
    "shard_tenant",
    "tune_shard",
]
