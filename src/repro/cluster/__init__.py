"""Sharded prediction cluster: similarity partitioning, per-shard
tuning, replica failover, failure-aware routing, anti-entropy repair,
elastic topology (epoch-fenced scale, split, merge, drift re-tune),
and an autonomous hysteresis-governed topology controller."""

from .chaos import (
    ClusterChaosOutcome,
    ClusterChaosScenario,
    assert_cluster_invariant,
    run_cluster_chaos,
)
from .cluster import ClusterPrediction, PredictionCluster
from .controller import TopologyController
from .elasticity import DriftDetector, DriftProposal, TopologyManager
from .loadtest import (
    ClusterLoadTestResult,
    ControllerLoadTestResult,
    ElasticityLoadTestResult,
    run_cluster_loadtest,
    run_controller_loadtest,
    run_elasticity_loadtest,
)
from .partition import WorkloadPartition, partition_workload
from .replicas import Replica, shard_tenant
from .routing import ClusterResponse, Router, RoutingTable
from .tuning import ShardConfig, tune_shard

__all__ = [
    "ClusterChaosOutcome",
    "ClusterChaosScenario",
    "ClusterLoadTestResult",
    "ClusterPrediction",
    "ClusterResponse",
    "ControllerLoadTestResult",
    "DriftDetector",
    "DriftProposal",
    "ElasticityLoadTestResult",
    "PredictionCluster",
    "Replica",
    "Router",
    "RoutingTable",
    "ShardConfig",
    "TopologyController",
    "TopologyManager",
    "WorkloadPartition",
    "assert_cluster_invariant",
    "partition_workload",
    "run_cluster_chaos",
    "run_cluster_loadtest",
    "run_controller_loadtest",
    "run_elasticity_loadtest",
    "shard_tenant",
    "tune_shard",
]
