"""Cluster load test: routed throughput and the cost of failover.

Two questions the committed ``BENCH_cluster.json`` answers on record:

1. what does similarity-sharded routing cost or buy against a single
   service given the *same total worker count* (``n_replicas x
   workers_per_replica``), and
2. what does a mid-window replica kill do to the tail -- the
   ``failover`` block isolates the latency of responses that were
   actually served by a non-primary owner, so the p99 of failover
   itself is a number, not an anecdote.

Closed-loop clients (one per shard, plus matching clients on the
baseline) hammer for a fixed wall-clock window; a third of the way in
the primary owner of shard 0 is killed, two thirds in it is restarted
-- the routed side must keep answering through both transitions.

:func:`run_controller_loadtest` measures the *autonomous* question: an
over-partitioned cluster under closed-loop load has its load decay a
third of the way in (one client retires); the topology controller,
ticked by an operator thread, notices the stranded cheap sibling pair,
waits out its dwell window, and merges -- shrinking the topology under
live traffic.  The committed ``BENCH_controller.json`` must show the
loop absorbed the surgery: zero errored responses across the merge
fence, zero refits (the merged artifact is fitted once and adopted by
peers), post-merge throughput within noise of pre-merge, and a zero
flap counter.

:func:`run_elasticity_loadtest` measures the *elastic* question
instead: a cluster under closed-loop load scales out mid-window -- a
new replica is built, warmed from peer bytes, and fenced in under a
new routing epoch while the clients keep hammering.  The committed
``BENCH_elasticity.json`` must show the handoff was absorbed (zero
errors across the epoch change) and that the added capacity actually
bought throughput (post-scale >= pre-scale): the starting replicas
carry a small synthetic per-request delay and the scaled-out replica
does not, so if routing really moves traffic to the new primary the
improvement is structural, not noise.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..service.server import PredictionService
from ..workload.queries import density_biased_knn_workload
from .cluster import PredictionCluster

__all__ = [
    "ClusterLoadTestResult",
    "ControllerLoadTestResult",
    "ElasticityLoadTestResult",
    "run_cluster_loadtest",
    "run_controller_loadtest",
    "run_elasticity_loadtest",
]


def _percentiles(latencies_s: list[float]) -> dict:
    if not latencies_s:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    ms = np.asarray(latencies_s) * 1e3
    return {
        "p50": round(float(np.percentile(ms, 50)), 3),
        "p95": round(float(np.percentile(ms, 95)), 3),
        "p99": round(float(np.percentile(ms, 99)), 3),
        "mean": round(float(ms.mean()), 3),
        "max": round(float(ms.max()), 3),
    }


@dataclass
class ClusterLoadTestResult:
    """One routed-vs-single window, summarized for the benchmark file."""

    duration_s: float
    n_shards: int
    n_replicas: int
    replication: int
    workers_total: int
    cluster_resolved: int = 0
    cluster_ok: int = 0
    cluster_failover: int = 0
    cluster_degraded: int = 0
    cluster_errors: int = 0
    cluster_throughput_rps: float = 0.0
    cluster_latency: dict = field(default_factory=dict)
    failover_latency: dict = field(default_factory=dict)
    single_resolved: int = 0
    single_throughput_rps: float = 0.0
    single_latency: dict = field(default_factory=dict)
    router: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "n_shards": self.n_shards,
            "n_replicas": self.n_replicas,
            "replication": self.replication,
            "workers_total": self.workers_total,
            "cluster": {
                "resolved": self.cluster_resolved,
                "ok": self.cluster_ok,
                "failover": self.cluster_failover,
                "degraded": self.cluster_degraded,
                "errors": self.cluster_errors,
                "throughput_rps": round(self.cluster_throughput_rps, 1),
                "latency_ms": self.cluster_latency,
                "failover_latency_ms": self.failover_latency,
            },
            "single": {
                "resolved": self.single_resolved,
                "throughput_rps": round(self.single_throughput_rps, 1),
                "latency_ms": self.single_latency,
            },
            "router": self.router,
        }


def run_cluster_loadtest(
    *,
    artifact_root: str,
    n_shards: int = 2,
    n_replicas: int = 3,
    replication: int = 2,
    workers_per_replica: int = 2,
    duration_s: float = 1.5,
    n_points: int = 600,
    dim: int = 6,
    memory: int = 200,
    n_queries: int = 16,
    k: int = 5,
    seed: int = 0,
    kill_mid_window: bool = True,
) -> ClusterLoadTestResult:
    """One measured window: routed cluster vs equal-worker single service.

    With ``kill_mid_window`` the primary of shard 0 is killed at t/3 and
    restarted at 2t/3, so the window contains a whole failover-and-
    recovery cycle and the failover percentiles are populated.
    """
    rng = np.random.default_rng(seed)
    half = n_points // 2
    data = np.vstack([
        rng.normal(loc=0.0, scale=1.0, size=(half, dim)),
        rng.normal(loc=6.0, scale=0.5, size=(n_points - half, dim)),
    ])
    tuning = density_biased_knn_workload(data, max(16, 4 * n_shards), k, rng)

    result = ClusterLoadTestResult(
        duration_s=duration_s, n_shards=n_shards, n_replicas=n_replicas,
        replication=replication,
        workers_total=n_replicas * workers_per_replica,
    )
    lock = threading.Lock()
    latencies: list[float] = []
    failover_latencies: list[float] = []

    cluster = PredictionCluster(
        data, tuning,
        artifact_root=artifact_root,
        n_shards=n_shards, n_replicas=n_replicas,
        replication=replication,
        workers_per_replica=workers_per_replica,
        memory=memory, fit_seed=seed, seed=seed,
    )
    workloads = {
        shard: density_biased_knn_workload(
            cluster.shard_points[shard], n_queries, k,
            np.random.default_rng(seed + shard),
        )
        for shard in range(n_shards)
    }

    def shard_client(shard: int) -> None:
        resolved = ok = failover = degraded = errors = 0
        local: list[float] = []
        local_failover: list[float] = []
        stop_at = time.monotonic() + duration_s
        while time.monotonic() < stop_at:
            response = cluster.request(shard, workloads[shard])
            resolved += 1
            local.append(response.latency_s)
            if response.status == "ok":
                ok += 1
                if response.failover_from is not None:
                    failover += 1
                    local_failover.append(response.latency_s)
            elif response.status == "degraded":
                degraded += 1
            else:
                errors += 1
        with lock:
            result.cluster_resolved += resolved
            result.cluster_ok += ok
            result.cluster_failover += failover
            result.cluster_degraded += degraded
            result.cluster_errors += errors
            latencies.extend(local)
            failover_latencies.extend(local_failover)

    primary0 = cluster.router.table.owners_of(0)[0]

    def chaos_operator() -> None:
        time.sleep(duration_s / 3)
        cluster.kill_replica(primary0)
        time.sleep(duration_s / 3)
        cluster.restart_replica(primary0)

    try:
        threads = [
            threading.Thread(target=shard_client, args=(shard,),
                             daemon=True)
            for shard in range(n_shards)
        ]
        if kill_mid_window:
            threads.append(
                threading.Thread(target=chaos_operator, daemon=True)
            )
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
        result.cluster_throughput_rps = result.cluster_resolved / max(
            elapsed, 1e-9
        )
        result.cluster_latency = _percentiles(latencies)
        result.failover_latency = _percentiles(failover_latencies)
        result.router = cluster.router.metrics()
    finally:
        cluster.stop()

    # --- single-service baseline: same total workers, one tenant ------
    service = PredictionService(
        workers=n_replicas * workers_per_replica, memory=memory,
    )
    service.register_tenant("all", data, fit_seed=seed)
    baseline_workload = density_biased_knn_workload(
        data, n_queries, k, np.random.default_rng(seed)
    )
    single_latencies: list[float] = []

    def single_client() -> None:
        resolved = 0
        local: list[float] = []
        stop_at = time.monotonic() + duration_s
        while time.monotonic() < stop_at:
            response = service.request("all", baseline_workload)
            resolved += 1
            local.append(response.latency_s)
        with lock:
            result.single_resolved += resolved
            single_latencies.extend(local)

    with service:
        threads = [
            threading.Thread(target=single_client, daemon=True)
            for _ in range(n_shards)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
    result.single_throughput_rps = result.single_resolved / max(
        elapsed, 1e-9
    )
    result.single_latency = _percentiles(single_latencies)
    return result


@dataclass
class ElasticityLoadTestResult:
    """One mid-window scale-out, split into pre/mid/post sub-windows.

    ``pre`` covers requests fully resolved before the scale-out began,
    ``post`` requests started after the new table was installed, and
    ``mid`` everything straddling the handoff -- the requests the
    epoch fence must absorb without a single dropped or errored
    response.  ``post_over_pre`` is the throughput ratio the benchmark
    asserts on.
    """

    duration_s: float
    n_shards: int
    n_replicas_start: int
    scale: dict = field(default_factory=dict)
    pre: dict = field(default_factory=dict)
    mid: dict = field(default_factory=dict)
    post: dict = field(default_factory=dict)
    errors: int = 0
    post_over_pre: float = 0.0
    router: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "n_shards": self.n_shards,
            "n_replicas_start": self.n_replicas_start,
            "scale": self.scale,
            "pre": self.pre,
            "mid": self.mid,
            "post": self.post,
            "errors": self.errors,
            "post_over_pre": round(self.post_over_pre, 3),
            "router": self.router,
        }


def run_elasticity_loadtest(
    *,
    artifact_root: str,
    n_shards: int = 2,
    n_replicas: int = 2,
    replication: int = 2,
    workers_per_replica: int = 2,
    duration_s: float = 1.5,
    n_points: int = 600,
    dim: int = 6,
    memory: int = 200,
    n_queries: int = 16,
    k: int = 5,
    seed: int = 0,
    baseline_slow_s: float = 0.004,
    scale_latency_factor: float = 0.5,
) -> ElasticityLoadTestResult:
    """One measured window with a scale-out a third of the way in.

    The starting replicas each carry ``baseline_slow_s`` of synthetic
    per-request delay; the replica added mid-window does not, and its
    ``scale_latency_factor`` advertises it as the cheapest owner, so
    the router's cost ordering moves primary traffic onto it the
    moment the new epoch's table lands.  Post-scale throughput beating
    pre-scale is therefore a *routing* claim, not a load-average
    accident.
    """
    rng = np.random.default_rng(seed)
    half = n_points // 2
    data = np.vstack([
        rng.normal(loc=0.0, scale=1.0, size=(half, dim)),
        rng.normal(loc=6.0, scale=0.5, size=(n_points - half, dim)),
    ])
    tuning = density_biased_knn_workload(data, max(16, 4 * n_shards), k, rng)

    result = ElasticityLoadTestResult(
        duration_s=duration_s, n_shards=n_shards,
        n_replicas_start=n_replicas,
    )
    lock = threading.Lock()
    #: (t_start, t_end, status) per resolved request
    records: list[tuple[float, float, str]] = []
    marks: dict[str, float] = {}
    failures: list[BaseException] = []

    cluster = PredictionCluster(
        data, tuning,
        artifact_root=artifact_root,
        n_shards=n_shards, n_replicas=n_replicas,
        replication=replication,
        workers_per_replica=workers_per_replica,
        memory=memory, fit_seed=seed, seed=seed,
    )
    for replica in cluster.replicas.values():
        replica.slow_s = baseline_slow_s
    workloads = {
        shard: density_biased_knn_workload(
            cluster.shard_points[shard], n_queries, k,
            np.random.default_rng(seed + shard),
        )
        for shard in cluster.active_shards()
    }

    def shard_client(shard: int) -> None:
        local: list[tuple[float, float, str]] = []
        stop_at = time.monotonic() + duration_s
        while time.monotonic() < stop_at:
            t_start = time.monotonic()
            response = cluster.request(shard, workloads[shard])
            local.append((t_start, time.monotonic(), response.status))
        with lock:
            records.extend(local)

    def scale_operator() -> None:
        time.sleep(duration_s / 3)
        marks["scale_start"] = time.monotonic()
        try:
            report = cluster.add_replica(
                latency_factor=scale_latency_factor
            )
        except BaseException as error:  # surfaced after join
            failures.append(error)
            report = {}
        marks["scale_done"] = time.monotonic()
        with lock:
            result.scale = {
                **report,
                "wall_s": round(
                    marks["scale_done"] - marks["scale_start"], 4
                ),
            }

    try:
        threads = [
            threading.Thread(target=shard_client, args=(shard,),
                             daemon=True)
            for shard in cluster.active_shards()
        ]
        threads.append(
            threading.Thread(target=scale_operator, daemon=True)
        )
        t0 = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        t_end = max(end for _, end, _ in records)
        scale_start = marks["scale_start"]
        scale_done = marks["scale_done"]

        def window(selected: list[tuple[float, float, str]],
                   span_s: float) -> dict:
            latencies = [end - start for start, end, _ in selected]
            errors = sum(
                1 for _, _, status in selected if status == "error"
            )
            return {
                "resolved": len(selected),
                "errors": errors,
                "throughput_rps": round(
                    len(selected) / max(span_s, 1e-9), 1
                ),
                "latency_ms": _percentiles(latencies),
            }

        pre = [r for r in records if r[1] <= scale_start]
        post = [r for r in records if r[0] >= scale_done]
        mid = [
            r for r in records
            if r[1] > scale_start and r[0] < scale_done
        ]
        result.pre = window(pre, scale_start - t0)
        result.mid = window(mid, scale_done - scale_start)
        result.post = window(post, t_end - scale_done)
        result.errors = sum(
            1 for _, _, status in records if status == "error"
        )
        result.post_over_pre = (
            result.post["throughput_rps"]
            / max(result.pre["throughput_rps"], 1e-9)
        )
        result.router = cluster.router.metrics()
    finally:
        cluster.stop()
    return result


@dataclass
class ControllerLoadTestResult:
    """One load-decay window absorbed by the autonomous controller.

    ``pre`` covers requests fully resolved between the load decay and
    the merge surgery (same client population as ``post``, so the
    throughput ratio is apples-to-apples), ``post`` requests started
    after the merged table landed, and ``mid`` everything straddling
    the surgery.  ``post_over_pre`` is the ratio the benchmark gates
    on: the merge must be absorbed, not paid for in throughput.
    """

    duration_s: float
    n_shards_start: int
    n_shards_end: int = 0
    n_replicas: int = 0
    merge_when: float = 0.0
    dwell_epochs: int = 0
    merge: dict = field(default_factory=dict)
    controller: dict = field(default_factory=dict)
    pre: dict = field(default_factory=dict)
    mid: dict = field(default_factory=dict)
    post: dict = field(default_factory=dict)
    errors: int = 0
    degraded: int = 0
    refits: int = 0
    flaps: int = -1
    post_over_pre: float = 0.0
    router: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "n_shards_start": self.n_shards_start,
            "n_shards_end": self.n_shards_end,
            "n_replicas": self.n_replicas,
            "merge_when": self.merge_when,
            "dwell_epochs": self.dwell_epochs,
            "merge": self.merge,
            "controller": self.controller,
            "pre": self.pre,
            "mid": self.mid,
            "post": self.post,
            "errors": self.errors,
            "degraded": self.degraded,
            "refits": self.refits,
            "flaps": self.flaps,
            "post_over_pre": round(self.post_over_pre, 3),
            "router": self.router,
        }


def run_controller_loadtest(
    *,
    artifact_root: str,
    n_shards: int = 3,
    n_replicas: int = 3,
    replication: int = 2,
    workers_per_replica: int = 2,
    duration_s: float = 1.8,
    n_points: int = 600,
    dim: int = 6,
    memory: int = 200,
    n_queries: int = 12,
    k: int = 5,
    seed: int = 0,
    n_clients: int = 3,
    merge_when: float = 2.5,
    split_when: float = 4.0,
    dwell_epochs: int = 2,
    tick_every_s: float = 0.05,
) -> ControllerLoadTestResult:
    """One measured window with a load decay and an autonomous merge.

    The dataset is two blobs carved into ``n_shards`` > 2 shards, so
    one blob is over-partitioned into a cheap sibling pair from the
    start -- the topology a sustained load decay strands.  A third of
    the way in one closed-loop client retires (the decay); an operator
    thread then starts ticking the attached controller, which must
    wait out the merge pair's dwell window and fire exactly one
    epoch-fenced merge under the surviving traffic.  Clients follow
    the live topology (they re-read ``active_shards`` every loop), so
    the same client population hammers 3 shards before the surgery
    and 2 after it.
    """
    rng = np.random.default_rng(seed)
    half = n_points // 2
    data = np.vstack([
        rng.normal(loc=0.0, scale=1.0, size=(half, dim)),
        rng.normal(loc=6.0, scale=0.5, size=(n_points - half, dim)),
    ])
    tuning = density_biased_knn_workload(data, max(16, 4 * n_shards), k, rng)

    result = ControllerLoadTestResult(
        duration_s=duration_s, n_shards_start=n_shards,
        n_replicas=n_replicas, merge_when=merge_when,
        dwell_epochs=dwell_epochs,
    )
    lock = threading.Lock()
    #: (t_start, t_end, status) per resolved request
    records: list[tuple[float, float, str]] = []
    marks: dict[str, float] = {}
    failures: list[BaseException] = []
    workloads: dict[int, object] = {}

    cluster = PredictionCluster(
        data, tuning,
        artifact_root=artifact_root,
        n_shards=n_shards, n_replicas=n_replicas,
        replication=replication,
        workers_per_replica=workers_per_replica,
        memory=memory, fit_seed=seed, seed=seed,
        merge_when=merge_when, split_when=split_when,
    )
    controller = cluster.start_controller(
        autostart=False, dwell_epochs=dwell_epochs,
    )

    def workload_for(shard: int):
        with lock:
            workload = workloads.get(shard)
            if workload is None:
                workload = density_biased_knn_workload(
                    cluster.shard_points[shard], n_queries, k,
                    np.random.default_rng(seed + shard),
                )
                workloads[shard] = workload
        return workload

    decay_at = duration_s / 3

    def client(index: int) -> None:
        # the last client is the decaying load: it retires at t/3
        my_stop = time.monotonic() + (
            decay_at if index == n_clients - 1 else duration_s
        )
        local: list[tuple[float, float, str]] = []
        while time.monotonic() < my_stop:
            for shard in cluster.active_shards():
                t_start = time.monotonic()
                response = cluster.request(shard, workload_for(shard))
                local.append(
                    (t_start, time.monotonic(), response.status)
                )
        with lock:
            records.extend(local)

    def operator() -> None:
        time.sleep(decay_at)
        marks["decay"] = time.monotonic()
        deadline = marks["decay"] + duration_s
        try:
            while time.monotonic() < deadline:
                before = time.monotonic()
                record = controller.tick()
                if record["action"] == "merge":
                    marks["merge_start"] = before
                    marks["merge_done"] = time.monotonic()
                    with lock:
                        result.merge = dict(record)
                    return
                time.sleep(tick_every_s)
        except BaseException as error:  # surfaced after join
            failures.append(error)

    try:
        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(n_clients)
        ]
        threads.append(threading.Thread(target=operator, daemon=True))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]

        result.n_shards_end = len(cluster.active_shards())
        report = controller.report()
        result.flaps = report["flaps"]
        result.controller = {
            "epoch": report["epoch"],
            "counters": report["counters"],
            "born": report["born"],
        }
        result.refits = sum(
            replica.service.store.rebuilds()
            for replica in cluster.replicas.values()
            if not replica.down and replica.service is not None
        )
        result.errors = sum(
            1 for _, _, status in records if status == "error"
        )
        result.degraded = sum(
            1 for _, _, status in records if status == "degraded"
        )

        if "merge_start" in marks:
            t_end = max(end for _, end, _ in records)
            decay = marks["decay"]
            merge_start = marks["merge_start"]
            merge_done = marks["merge_done"]

            def window(selected, span_s: float) -> dict:
                latencies = [end - start for start, end, _ in selected]
                errors = sum(
                    1 for _, _, status in selected if status == "error"
                )
                return {
                    "resolved": len(selected),
                    "errors": errors,
                    "throughput_rps": round(
                        len(selected) / max(span_s, 1e-9), 1
                    ),
                    "latency_ms": _percentiles(latencies),
                }

            pre = [r for r in records
                   if r[0] >= decay and r[1] <= merge_start]
            post = [r for r in records if r[0] >= merge_done]
            mid = [r for r in records
                   if r[1] > merge_start and r[0] < merge_done]
            result.pre = window(pre, merge_start - decay)
            result.mid = window(mid, merge_done - merge_start)
            result.post = window(post, t_end - merge_done)
            result.post_over_pre = (
                result.post["throughput_rps"]
                / max(result.pre["throughput_rps"], 1e-9)
            )
        result.router = cluster.router.metrics()
    finally:
        cluster.stop()
    return result
