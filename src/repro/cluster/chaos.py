"""Cluster chaos harness: replica storms with an exact invariant.

PR 6's service harness proved the single-node contract; this one
extends it across whole-replica loss.  A seeded storm drives the
cluster through replica kills and restarts, per-replica artifact
corruption, a slow replica (hedged around), a faulty replica (typed
error responses tripping its breaker), and deliberate routing-table
staleness (the table keeps naming a killed replica).  The invariant:

* **every request terminates** in exactly one of four ways --
  bit-identical to the unloaded single-replica reference, served by
  failover *with a causal record* (``tried`` explains every candidate
  passed over, and the answer is still bit-identical), explicitly
  degraded (closed-form fallback, ``cause="unavailable"``), or a typed
  error; never hung, never silently wrong;
* **single-kill availability** -- while at most one replica is down,
  no request for a shard with a healthy peer may end unavailable;
* **anti-entropy heals without refitting** -- a corrupt artifact
  planted before the storm is adopted bit-identically from a peer
  (``"adopted"`` in the store's events, zero ``"rebuilt"``);
* **per-shard op sums reconcile exactly** three ways: the router's
  drained per-leg sums == the sum over every replica's ledgers
  (including ledgers retired by kills) == the sum over the responses'
  own legs.

**The controller axis** (``controller=True``) hands the topology to
the autonomous loop instead of the operator: the storm starts
over-partitioned (one blob carved into a cheap sibling pair), traffic
*decays* a third of the way in, and the controller -- ticked
deterministically once per round -- must notice the stranded pair,
wait out its dwell window, and merge it while one of the pair's owners
is killed mid-surgery and the merged artifact is corrupted right after
the fence (anti-entropy must adopt a peer's bytes, never refit).  The
invariant extends: the topology must *shrink* with zero erroneous
responses, the flap counter must stay zero (no split-then-merge or
inverse within the dwell window), and the per-epoch op books still
reconcile exactly across the autonomous fence.

**The topology axis** (``scale_events=True``) drives the same storm
through *elastic* transitions: a replica is scaled out mid-storm with
a deliberately corrupted donor artifact (warming must skip the corrupt
copy, adopt a verified peer's bytes, and refit nothing), killed right
after the handoff and later restarted; a shard is split into freshly
tuned successors while its traffic continues; the scaled-out replica
is finally removed with a graceful drain.  A stale-epoch probe pins
each topology change's *previous* epoch and must be refused with a
typed :class:`~repro.errors.StaleRoutingEpochError`, then succeed on
retry against the fresh table.  The invariant extends across every
epoch boundary: each response is still identical / failover-with-
cause / degraded-with-cause / typed -- never dropped -- and the
per-epoch op books summed across epochs equal the drained per-shard
sums to the op.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..errors import PredictionError, StaleRoutingEpochError
from ..service.server import WorkerDeath
from .cluster import PredictionCluster
from .replicas import shard_tenant

__all__ = [
    "ClusterChaosOutcome",
    "ClusterChaosScenario",
    "assert_cluster_invariant",
    "run_cluster_chaos",
]

#: error types a cluster-level error verdict may carry
_TYPED_ERRORS = frozenset({
    "ReplicaUnavailableError",
    "DeadlineExceededError",
    "ServiceOverloadedError",
    "TenantQuotaExceededError",
    "WorkerDeath",
})

#: how long any single verdict may take before the sweep calls it hung
_HANG_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class ClusterChaosScenario:
    """One deterministic cluster storm.

    ``seed`` drives the dataset, the partition, the request stream, and
    the kill schedule.  ``rounds`` requests are issued per shard; the
    primary of shard 0 is killed a third of the way in (the routing
    table is *left stale* on purpose), restarted two thirds in, and --
    when ``double_kill`` is set -- the remaining owner of shard 0 is
    also killed for a window, forcing the degraded/unavailable path.
    ``corrupt_replicas`` artifacts of shard 0 are corrupted *before*
    the storm; the pre-storm anti-entropy pass must heal them from a
    peer without a single rebuild.

    ``scale_events`` adds the topology axis: scale-out with a corrupt
    donor early in the storm, a kill of the freshly added replica
    right after the handoff, a mid-storm split of shard 1, a stale-
    epoch probe at each fence, and a graceful scale-in near the end.

    ``controller`` adds the autonomous axis: the cluster starts
    over-partitioned (use ``n_shards=3`` so one blob is carved into a
    cheap sibling pair), per-round request volume decays at
    ``rounds // 3``, and the controller is ticked once per round; one
    owner of the merge pair is killed on the tick that fires the
    surgery and the merged artifact is corrupted right after it.
    """

    seed: int = 0
    n_points: int = 600
    dim: int = 5
    n_shards: int = 2
    n_replicas: int = 3
    replication: int = 2
    rounds: int = 18
    n_queries: int = 6
    k: int = 5
    memory: int = 200
    corrupt_replicas: int = 1
    slow_replica: bool = True
    faulty_replica: bool = True
    double_kill: bool = False
    scale_events: bool = False
    controller: bool = False
    controller_dwell: int = 2
    merge_when: float = 1.5
    slow_s: float = 0.12
    hedge_after_s: float = 0.04
    #: run every replica service with the batched execution plane on --
    #: the cluster invariant (bit-identity / failover-with-cause /
    #: degraded / typed, plus exact per-shard op reconciliation of the
    #: split attributions) must hold unchanged
    coalesce: bool = False


@dataclass
class ClusterChaosOutcome:
    """What one storm observed, classified request by request."""

    scenario: ClusterChaosScenario
    classified: Counter = field(default_factory=Counter)
    violations: list[str] = field(default_factory=list)
    reconciliation: dict = field(default_factory=dict)
    healed: list[dict] = field(default_factory=list)
    rebuilds: int = 0
    router: dict = field(default_factory=dict)
    causes_seen: Counter = field(default_factory=Counter)
    #: topology events (scale-out/in, splits) the storm performed
    topology: list = field(default_factory=list)
    #: charged ops per routing epoch per shard (epoch fence books)
    epoch_books: dict = field(default_factory=dict)
    #: stale-epoch probes that were (correctly) refused with the typed error
    stale_rejections: int = 0
    #: artifacts healed *mid-storm* (the corrupted scale-out donor)
    warm_heals: int = 0
    #: controller-axis summary: shard counts and the loop's own report
    controller: dict = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return sum(self.classified.values())

    def summary(self) -> dict:
        return {
            "seed": self.scenario.seed,
            "requests": self.total_requests,
            "classified": dict(self.classified),
            "causes_seen": dict(self.causes_seen),
            "violations": list(self.violations),
            "healed": list(self.healed),
            "rebuilds": self.rebuilds,
            "router": self.router,
            "topology": list(self.topology),
            "stale_rejections": self.stale_rejections,
            "warm_heals": self.warm_heals,
            "controller": dict(self.controller),
            "epoch_books": {
                str(epoch): {str(s): int(v) for s, v in book.items()}
                for epoch, book in sorted(self.epoch_books.items())
            },
            "reconciliation": {
                str(k): v for k, v in self.reconciliation.items()
            },
        }


def run_cluster_chaos(
    scenario: ClusterChaosScenario, *, artifact_root: str
) -> ClusterChaosOutcome:
    """Run one seeded storm against a fresh cluster; classify everything."""
    rng = np.random.default_rng(scenario.seed)
    outcome = ClusterChaosOutcome(scenario=scenario)

    # Two gaussian blobs pulled apart so the similarity partition has
    # real structure to find (and the shards genuinely differ).
    half = scenario.n_points // 2
    data = np.vstack([
        rng.normal(loc=0.0, scale=1.0, size=(half, scenario.dim)),
        rng.normal(loc=6.0, scale=0.5,
                   size=(scenario.n_points - half, scenario.dim)),
    ])
    tuning = _tuning_workload(data, rng, scenario)

    latency_factors = {}
    if scenario.slow_replica:
        latency_factors["replica-2"] = 3.0  # routed last, hedged around

    cluster = PredictionCluster(
        data, tuning,
        artifact_root=artifact_root,
        n_shards=scenario.n_shards,
        n_replicas=scenario.n_replicas,
        replication=scenario.replication,
        memory=scenario.memory,
        fit_seed=scenario.seed,
        seed=scenario.seed,
        latency_factors=latency_factors,
        hedge_after_s=scenario.hedge_after_s,
        merge_when=scenario.merge_when,
        coalesce=scenario.coalesce,
    )
    controller = None
    if scenario.controller:
        # Attached but never started: the storm drives tick() itself so
        # the kill/corrupt schedule lands deterministically mid-surgery.
        controller = cluster.start_controller(
            autostart=False,
            dwell_epochs=scenario.controller_dwell,
            cooldown_epochs=2,
        )
        outcome.controller["shards_start"] = len(cluster.active_shards())

    # --- pre-storm corruption + anti-entropy heal ---------------------
    shard0_owners = cluster.router.table.owners_of(0)
    victims = list(shard0_owners[:scenario.corrupt_replicas])
    reference_bytes = {
        name: cluster.replicas[name].artifact_path(0).read_bytes()
        for name in shard0_owners
    }
    for name in victims:
        cluster.corrupt_artifact(name, 0)
    heal_report = cluster.anti_entropy()
    outcome.healed = heal_report[0]["healed"]
    healed_names = {entry["replica"] for entry in outcome.healed}
    if healed_names != set(victims):
        outcome.violations.append(
            f"anti-entropy healed {sorted(healed_names)}, "
            f"expected {sorted(victims)}"
        )
    if heal_report[0]["rebuilt"] is not None:
        outcome.violations.append(
            "anti-entropy rebuilt from data although a verified peer "
            "copy existed"
        )
    for name in victims:
        healed_bytes = cluster.replicas[name].artifact_path(0).read_bytes()
        if healed_bytes != reference_bytes[name]:
            outcome.violations.append(
                f"healed artifact on {name} is not bit-identical to the "
                f"pre-corruption bytes"
            )
    outcome.rebuilds = sum(
        replica.service.store.rebuilds()
        for replica in cluster.replicas.values()
    )
    if outcome.rebuilds:
        outcome.violations.append(
            f"{outcome.rebuilds} data rebuild(s) during peer heal"
        )

    # --- chaos knobs on the live replicas -----------------------------
    if scenario.slow_replica:
        cluster.replicas["replica-2"].slow_s = scenario.slow_s
    if scenario.faulty_replica:
        # replica-1 kills a deterministic third of its shard-1 requests;
        # the dying worker answers with a typed error first, which is
        # what feeds the router's breaker and triggers failover.  The
        # fault is scoped to shard 1 so it exercises failover on a
        # *live* primary while shard 0 tests failover on a *dead* one
        # -- replica-1 is also shard 0's only failover target, and a
        # replica faulting everywhere would make the single-kill
        # availability guarantee untestable.
        def faulty_hook(item) -> None:
            if (item.tenant.name == shard_tenant(1)
                    and item.pending.request_id % 3 == 0):
                raise WorkerDeath(
                    f"chaos kill of request {item.pending.request_id}"
                )
        cluster.replicas["replica-1"].request_hook = faulty_hook

    # --- unloaded references: the bit-identity oracle -----------------
    # Warm predictions depend only on (shard points, tuned config,
    # fit_seed), so any live owner's model is *the* reference.  Split
    # successors get their reference installed the moment they exist.
    workloads: dict[int, object] = {}
    references: dict[int, np.ndarray] = {}

    def install_reference(shard: int) -> None:
        workload = _shard_workload(cluster, shard, rng, scenario)
        workloads[shard] = workload
        for owner in cluster.router.table.owners_of(shard):
            replica = cluster.replicas[owner]
            if replica.down or replica.service is None:
                continue
            model = replica.service.tenant(shard_tenant(shard)).model
            references[shard] = model.predict(workload).per_query.copy()
            return
        outcome.violations.append(
            f"no live owner to build shard {shard}'s reference"
        )

    for shard in cluster.active_shards():
        install_reference(shard)

    # --- the storm ----------------------------------------------------
    primary0 = shard0_owners[0]
    peer0 = shard0_owners[1] if len(shard0_owners) > 1 else None
    kill_at = scenario.rounds // 3
    restart_at = 2 * scenario.rounds // 3
    double_window = (
        range(kill_at + 1, restart_at - 1) if scenario.double_kill
        else range(0)
    )
    # Topology schedule (scale_events only), interleaved with the kill
    # storm but never overlapping its down window with another down
    # replica, so the single-kill availability guarantee stays testable.
    scale_add_at = 2 if scenario.scale_events else -1
    scale_kill_at = scale_add_at + 1       # killed right after handoff
    scale_restart_at = scale_add_at + 3
    split_at = scenario.rounds // 2 if scenario.scale_events else -1
    scale_remove_at = (
        (7 * scenario.rounds) // 9 if scenario.scale_events else -1
    )
    scaled_name: str | None = None
    responses = []

    def downs() -> int:
        return sum(1 for r in cluster.replicas.values() if r.down)

    def probe_stale(shard: int, pinned_epoch: int) -> None:
        """Pin the fenced-off epoch: the dispatch must be refused with
        the typed error, and the un-pinned retry must serve normally
        -- the stale-router recovery story, exercised at every fence."""
        try:
            cluster.request(shard, workloads[shard], epoch=pinned_epoch)
        except StaleRoutingEpochError:
            outcome.stale_rejections += 1
        else:
            outcome.violations.append(
                f"dispatch pinned to fenced-off epoch {pinned_epoch} "
                f"(shard {shard}) was not refused"
            )
        retry = cluster.request(shard, workloads[shard])
        responses.append((
            shard, downs(), "warm",
            cluster.router.table.owners_of(shard), retry,
        ))

    # Controller-axis schedule: the merge fires on tick ``dwell`` (the
    # pair is a candidate from tick 1 and must persist the dwell
    # window), so the mid-surgery kill lands on that round's tick and
    # the victim restarts two rounds later.  Request volume decays a
    # third of the way in -- the load story that justifies shrinking.
    merge_kill_at = (
        scenario.controller_dwell - 1 if scenario.controller else -1
    )
    decay_at = scenario.rounds // 3 if scenario.controller else -1
    merge_victim: str | None = None
    heal_pending = False

    def controller_tick(round_i: int) -> None:
        nonlocal merge_victim, heal_pending
        pre_epoch = cluster.router.table.epoch
        if round_i == merge_kill_at:
            pairs = cluster.topology.merge_candidates()
            if pairs:
                owners = cluster.router.table.owners_of(pairs[0]["pair"][0])
                if len(owners) > 1 and downs() == 0:
                    merge_victim = owners[-1]
                    cluster.kill_replica(merge_victim)
        record = controller.tick()
        if record["action"] not in ("idle",) and "skip" not in record["action"]:
            outcome.topology.append(
                {"op": f"controller:{record['action']}", **{
                    k: v for k, v in record.items()
                    if k in ("tick", "pair", "shard", "successors", "ratio")
                }}
            )
        for successor in record.get("successors", ()):
            install_reference(successor)
        if record["action"] == "merge":
            merged = record["successors"][0]
            # Corrupt one owner's copy of the *just-merged* artifact.
            # The warm in-memory model keeps serving bit-identically;
            # the on-disk rot is healed once every listed owner is back
            # up -- anti-entropy must adopt a verified peer's bytes,
            # never refit.
            owner = cluster.router.table.owners_of(merged)[0]
            cluster.corrupt_artifact(owner, merged)
            heal_pending = True
            probe_stale(merged, pre_epoch)
        if round_i == merge_kill_at + 2:
            if merge_victim is not None:
                cluster.restart_replica(merge_victim)
                merge_victim = None
            if heal_pending:
                heal = cluster.anti_entropy()
                outcome.warm_heals += sum(
                    len(entry["healed"]) for entry in heal.values()
                )
                rebuilt = [s for s, entry in heal.items()
                           if entry["rebuilt"] is not None]
                if rebuilt:
                    outcome.violations.append(
                        f"post-merge heal rebuilt shard(s) {rebuilt} "
                        f"from data although verified peers existed"
                    )
                heal_pending = False

    try:
        for round_i in range(scenario.rounds):
            if controller is not None:
                controller_tick(round_i)
            if round_i == scale_add_at:
                # Scale out with a sabotaged donor: corrupt the
                # cost-ordered first owner's copy of shard 0 -- the
                # artifact the warm path would read first -- so the
                # peer-bytes warm-up must skip it for a verified peer.
                donor0 = cluster.router.table.owners_of(0)[0]
                cluster.corrupt_artifact(donor0, 0)
                pre_epoch = cluster.router.table.epoch
                report = cluster.add_replica()
                scaled_name = report["replica"]
                outcome.topology.append({
                    "op": "add", "replica": scaled_name,
                    "epoch": report["epoch"],
                    "refits": report["refits"],
                    "warmed": report["warmed"],
                })
                if report["refits"]:
                    outcome.violations.append(
                        f"scale-out refit {report['refits']} artifact(s) "
                        f"although verified peers existed"
                    )
                if any(w["shard"] == 0 and w["via"] == f"peer:{donor0}"
                       for w in report["warmed"]):
                    outcome.violations.append(
                        f"scale-out warmed shard 0 from the corrupted "
                        f"donor {donor0}"
                    )
                # heal the sabotaged donor mid-storm, from a peer
                heal = cluster.anti_entropy()
                outcome.warm_heals += sum(
                    len(entry["healed"]) for entry in heal.values()
                )
                rebuilt = [s for s, entry in heal.items()
                           if entry["rebuilt"] is not None]
                if rebuilt:
                    outcome.violations.append(
                        f"mid-storm heal rebuilt shard(s) {rebuilt} from "
                        f"data although verified peers existed"
                    )
                probe_stale(0, pre_epoch)
            if round_i == scale_kill_at and scaled_name is not None:
                cluster.kill_replica(scaled_name)
            if round_i == scale_restart_at and scaled_name is not None:
                cluster.restart_replica(scaled_name)
            if round_i == split_at:
                # Split the highest non-zero shard (shard 0 is the kill
                # storm's stage) into freshly tuned successors.
                target = max(
                    (s for s in cluster.active_shards() if s != 0),
                    default=None,
                )
                pre_epoch = cluster.router.table.epoch
                if target is not None:
                    try:
                        children = cluster.split_shard(target)
                    except PredictionError as error:
                        outcome.topology.append({
                            "op": "split-refused", "shard": target,
                            "reason": str(error),
                        })
                    else:
                        outcome.topology.append({
                            "op": "split", "shard": target,
                            "children": list(children),
                            "epoch": cluster.router.table.epoch,
                        })
                        for child in children:
                            install_reference(child)
                        probe_stale(children[0], pre_epoch)
            if round_i == scale_remove_at and scaled_name is not None:
                pre_epoch = cluster.router.table.epoch
                report = cluster.remove_replica(scaled_name)
                outcome.topology.append({
                    "op": "remove", "replica": scaled_name,
                    "epoch": report["epoch"],
                    "retired_ops": report["retired_ops"],
                })
                probe_stale(cluster.active_shards()[0], pre_epoch)
                scaled_name = None
            if round_i == kill_at:
                # Kill shard 0's primary and *leave the routing table
                # stale* -- the router must discover the loss itself.
                cluster.kill_replica(primary0)
            if scenario.double_kill and peer0 is not None:
                if round_i == double_window.start:
                    cluster.kill_replica(peer0)
                if round_i == double_window.stop:
                    cluster.restart_replica(peer0)
            if round_i == restart_at:
                cluster.restart_replica(primary0)
            # The controller axis models its load decay explicitly:
            # double request volume before ``decay_at``, single after
            # -- the drop in demand is what justifies shrinking.
            reps = 2 if scenario.controller and round_i < decay_at else 1
            for shard in cluster.active_shards():
                down = downs()
                owners_at_submit = cluster.router.table.owners_of(shard)
                for _ in range(reps):
                    response = cluster.request(shard, workloads[shard])
                    responses.append(
                        (shard, down, "warm", owners_at_submit, response)
                    )
                if round_i % 3 == 2:
                    # A charged full-method request per shard every
                    # third round keeps the reconciliation sums nonzero
                    # -- warm requests charge no I/O, and an invariant
                    # over all-zero books proves nothing.
                    full = cluster.request(
                        shard, workloads[shard], method="cutoff",
                        seed=round_i,
                    )
                    responses.append(
                        (shard, down, "cutoff", owners_at_submit, full)
                    )
        cluster.wait_idle(_HANG_TIMEOUT_S)
        for shard, down_at_submit, method, owners, response in responses:
            _classify(
                outcome, shard, down_at_submit, method, owners,
                response, references,
            )

        # --- reconciliation: three per-shard sums must agree ----------
        # Over every shard that ever carried traffic -- retired parents
        # included: a split must not make a parent's charges vanish.
        router_ops = cluster.router.drain(timeout_s=_HANG_TIMEOUT_S)
        all_shards = sorted(
            {s for (s, *_rest) in responses} | set(cluster.active_shards())
        )
        for shard in all_shards:
            from_responses = sum(
                r.charged_ops()
                for (s, _, _, _, r) in responses if s == shard
            )
            outcome.reconciliation[shard] = {
                "router_ops": int(router_ops.get(shard, 0)),
                "replica_ops": cluster.charged_ops(shard),
                "response_ops": int(from_responses),
            }
        # --- and the epoch books must sum to the same totals ----------
        outcome.epoch_books = {
            epoch: dict(book)
            for epoch, book in cluster.router.epoch_ops(
                timeout_s=_HANG_TIMEOUT_S
            ).items()
        }
        outcome.router = cluster.router.metrics()
        if controller is not None:
            report = controller.report()
            outcome.controller.update({
                "shards_end": len(cluster.active_shards()),
                "flaps": report["flaps"],
                "counters": dict(report["counters"]),
                "born": report["born"],
                "epoch": report["epoch"],
            })
    finally:
        cluster.stop()
    return outcome


def _tuning_workload(data, rng, scenario):
    from ..workload.queries import density_biased_knn_workload
    return density_biased_knn_workload(
        data, max(4 * scenario.n_shards, 16), scenario.k, rng
    )


def _shard_workload(cluster, shard, rng, scenario):
    """A workload whose queries all belong to one shard: drawn from the
    shard's own points, radii against the shard's points (matching what
    the shard's tenant serves)."""
    from ..workload.queries import density_biased_knn_workload
    return density_biased_knn_workload(
        cluster.shard_points[shard], scenario.n_queries, scenario.k, rng
    )


def _classify(outcome, shard, down_at_submit, method, owners,
              response, references) -> None:
    """File one verdict under its terminal state (or violation).

    ``owners`` is the owner set *at submit time*: once topology can
    change mid-storm, the final table would mis-attribute requests
    admitted under an earlier epoch (a retired shard has no final
    owners at all).
    """
    if response.cause:
        outcome.causes_seen[response.cause] += 1
    if response.status == "ok":
        # Bit-identity is a *warm* guarantee: the fitted geometries are
        # identical across a shard's owners, so any owner's warm answer
        # must equal the unloaded reference.  Full methods run fresh
        # sampled predictions -- correct, but not byte-comparable.
        if method == "warm" and not np.array_equal(
            response.result.per_query, references[shard]
        ):
            outcome.classified["mismatch"] += 1
            outcome.violations.append(
                f"request {response.request_id} (shard {shard}) served "
                f"by {response.served_by} diverged from the reference"
            )
            return
        if response.failover_from is not None:
            if not response.tried:
                outcome.classified["mismatch"] += 1
                outcome.violations.append(
                    f"failover request {response.request_id} carries no "
                    f"causal record"
                )
                return
            outcome.classified["failover"] += 1
        elif method == "warm":
            outcome.classified["identical"] += 1
        else:
            outcome.classified["served"] += 1
    elif response.status == "degraded":
        if response.method_used == "closed_form":
            outcome.classified["degraded"] += 1
            # Single-kill availability: closed-form may only be served
            # when *no* owner of the shard was up -- with at most one
            # replica down and replication >= 2, this is a violation.
            if down_at_submit <= 1 and len(owners) >= 2:
                outcome.violations.append(
                    f"request {response.request_id} (shard {shard}) "
                    f"degraded to closed-form although a healthy peer "
                    f"owned the shard (down={down_at_submit}, "
                    f"tried={response.tried})"
                )
        else:
            # The facade's own degradation chain ran on the serving
            # replica -- a shard-level success with a causal record.
            outcome.classified["facade_degraded"] += 1
    elif response.status == "error":
        if response.error_type in _TYPED_ERRORS:
            outcome.classified["typed_error"] += 1
            if (response.error_type == "ReplicaUnavailableError"
                    and down_at_submit <= 1 and len(owners) >= 2):
                outcome.violations.append(
                    f"request {response.request_id} (shard {shard}) "
                    f"unavailable although a healthy peer owned the "
                    f"shard (tried={response.tried})"
                )
        else:
            outcome.classified["untyped_error"] += 1
            outcome.violations.append(
                f"request {response.request_id} (shard {shard}) failed "
                f"with untyped {response.error_type}: {response.error}"
            )
    else:
        outcome.violations.append(
            f"request {response.request_id} ended in unknown status "
            f"{response.status!r}"
        )


def assert_cluster_invariant(outcome: ClusterChaosOutcome) -> None:
    """The cluster invariant, as one assertion."""
    assert not outcome.violations, (
        "cluster invariant violated:\n  "
        + "\n  ".join(outcome.violations)
    )
    assert outcome.classified.get("hung", 0) == 0
    assert outcome.classified.get("mismatch", 0) == 0
    assert outcome.classified.get("untyped_error", 0) == 0
    for shard, sums in outcome.reconciliation.items():
        assert (sums["router_ops"] == sums["replica_ops"]
                == sums["response_ops"]), (
            f"shard {shard} op sums do not reconcile: {sums} "
            f"(a charge leaked or went missing across failover)"
        )
    if outcome.epoch_books:
        # Summed across epochs, the per-epoch books must equal the
        # drained per-shard sums to the op: the two-epoch overlap of
        # every handoff is exactly attributed, never double-counted.
        across = Counter()
        for book in outcome.epoch_books.values():
            across.update(book)
        for shard, sums in outcome.reconciliation.items():
            assert int(across.get(shard, 0)) == sums["router_ops"], (
                f"shard {shard}: epoch books sum to "
                f"{int(across.get(shard, 0))} but the router drained "
                f"{sums['router_ops']} (a charge crossed the epoch "
                f"fence unattributed)"
            )
    if outcome.scenario.scale_events:
        assert outcome.stale_rejections > 0, (
            "topology storm ran but no stale-epoch probe was refused "
            "-- the fence is not fencing"
        )
    if outcome.scenario.controller:
        ctl = outcome.controller
        assert ctl["shards_end"] < ctl["shards_start"], (
            f"controller storm ended with {ctl['shards_end']} shards, "
            f"started with {ctl['shards_start']} -- the load decay was "
            f"never absorbed into a smaller topology"
        )
        assert ctl["counters"].get("merge", 0) >= 1, (
            "controller storm fired no merge"
        )
        assert ctl["flaps"] == 0, (
            f"controller flapped {ctl['flaps']} time(s): a shard was "
            f"split and merged back (or inverse) within the dwell window"
        )
        assert outcome.stale_rejections > 0, (
            "controller merge fenced no stale probe -- the autonomous "
            "surgery is not epoch-fenced"
        )
