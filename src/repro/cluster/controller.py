"""Autonomous topology controller: the policy loop over the mechanics.

:mod:`.elasticity` gives the cluster *mechanisms* -- epoch-fenced
split, merge, and drift re-tune, all admitted against a governed reorg
budget -- but leaves the *policy* to a human: someone has to watch the
drift detector, notice a cost divergence, and call the surgery by
hand.  :class:`TopologyController` closes that loop.  Each controller
epoch (one :meth:`~TopologyController.tick`, driven by a background
thread in production or called directly in tests) it consults the
three detectors and schedules at most one surgery:

* :meth:`DriftDetector.proposals` -- shards whose live queries walked
  away from their frozen centroid (fires a governed re-tune on a
  workload synthesized from the drifted queries);
* :meth:`TopologyManager.split_candidates` -- shards whose tuned cost
  diverges above ``split_when`` times the sibling median;
* :meth:`TopologyManager.merge_candidates` -- sibling pairs whose
  combined tuned cost stays under ``merge_when`` times the sibling
  median, so sustained load decay shrinks the topology again.

Deciding *when not to act* is the hard part, so every decision passes
a hysteresis gauntlet first:

* **dwell window** -- a merge pair must persist as a candidate for
  ``dwell_epochs`` consecutive ticks before it may fire; one cheap
  tuning snapshot is not a trend.
* **cool-down epochs** -- a shard born of any surgery may not be
  operated on again for ``cooldown_epochs`` ticks.
* **no-flap rule** -- a shard born of a split may not merge, and a
  shard born of a merge may not split, within ``dwell_epochs`` of its
  birth.  Vetoes are counted (``flap_vetoes``); an actual violation
  would increment ``flaps``, which therefore *proves* the rule held
  when it reads zero.  Births are absorbed from the topology event
  log, so manual surgeries performed around the controller are
  tracked too.
* **priority** -- drift re-tune beats split beats merge: a shard
  serving the wrong workload is worse than an expensive one, and
  growing capacity beats shrinking it.
* **one surgery in flight** -- ticks are serialized and each fires at
  most one reorganization; admission is charged before surgery (the
  PR 8 invariant), so a :class:`~repro.errors.BudgetExceededError`
  or a refused merge leaves the routing table untouched and is
  recorded as a refusal, never retried blindly within the tick.

The clock is injectable and the tick deterministic, so the unit suite
drives the whole policy without a single wall-clock sleep.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import TYPE_CHECKING, Callable

from ..errors import (
    BudgetExceededError,
    InputValidationError,
    PredictionError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import PredictionCluster

__all__ = ["TopologyController"]

#: surgery kinds in firing priority order
_PRIORITY = ("re-tune", "split", "merge")


class TopologyController:
    """Hysteresis-governed rebalancing loop for one cluster.

    Construct via :meth:`PredictionCluster.start_controller` (which
    also starts the background thread) or directly for deterministic
    tests -- :meth:`tick` is the whole loop body and never sleeps.
    """

    def __init__(
        self,
        cluster: "PredictionCluster",
        *,
        interval_s: float = 1.0,
        dwell_epochs: int = 3,
        cooldown_epochs: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ):
        if interval_s <= 0:
            raise InputValidationError(
                f"controller interval_s must be positive, got {interval_s}"
            )
        if dwell_epochs < 1:
            raise InputValidationError(
                f"dwell_epochs must be >= 1 (a zero dwell disables the "
                f"anti-flap hysteresis entirely), got {dwell_epochs}"
            )
        if cooldown_epochs < 0:
            raise InputValidationError(
                f"cooldown_epochs must be >= 0, got {cooldown_epochs}"
            )
        self.cluster = cluster
        self.topology = cluster.topology
        self.interval_s = interval_s
        self.dwell_epochs = int(dwell_epochs)
        self.cooldown_epochs = int(cooldown_epochs)
        self.clock = clock
        #: controller epochs == completed ticks
        self.epoch = 0
        self.events: list[dict] = []
        self.counters: Counter = Counter()
        #: actual no-flap violations -- stays 0 unless the veto failed
        self.flaps = 0
        #: shard -> (birth op, controller epoch first seen)
        self._born: dict[int, tuple[str, int]] = {}
        #: shard -> first controller epoch it may be operated on again
        self._cooldown_until: dict[int, int] = {}
        #: merge pair -> consecutive ticks it has been a candidate
        self._dwell: dict[tuple[int, int], int] = {}
        self._seen_topology_events = 0
        self._surgery_in_flight = False
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TopologyController":
        """Start the background loop.  Idempotent."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="topology-controller", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background loop and join it.  Idempotent."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=30.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception as error:  # noqa: BLE001 - loop must survive
                # The loop never dies silently: an unexpected error is
                # recorded and the next tick runs -- a wedged cluster
                # still wants split/merge decisions on the healthy part.
                with self._lock:
                    self.counters["tick_errors"] += 1
                    self.events.append({
                        "tick": self.epoch,
                        "at": round(self.clock(), 6),
                        "action": "error",
                        "error": type(error).__name__,
                        "detail": str(error),
                    })

    # ------------------------------------------------------------------
    # Hysteresis state
    # ------------------------------------------------------------------

    def _absorb_topology_events(self) -> None:
        """Fold new topology events into birth/cool-down books.

        Every surgery -- the controller's own *and* any performed
        manually through the :class:`TopologyManager` -- appends an
        event with its successor shards; absorbing them here anchors
        each successor's birth at the current controller epoch, which
        is what the no-flap rule and cool-downs measure against.
        """
        events = self.topology.events
        for event in events[self._seen_topology_events:]:
            for child in event.get("children", ()):
                child = int(child)
                self._born.setdefault(child, (event["op"], self.epoch))
                until = self.epoch + self.cooldown_epochs
                if self._cooldown_until.get(child, -1) < until:
                    self._cooldown_until[child] = until
        self._seen_topology_events = len(events)
        active = set(self.cluster.active_shards())
        for pair in list(self._dwell):
            if not set(pair) <= active:
                del self._dwell[pair]

    def _cooling(self, shard: int) -> bool:
        return self.epoch < self._cooldown_until.get(shard, 0)

    def _flap_veto(self, shard: int, op: str) -> bool:
        """Would ``op`` invert the shard's birth within the dwell window?"""
        born = self._born.get(shard)
        if born is None:
            return False
        birth_op, birth_epoch = born
        inverse_birth = {"merge": "split", "split": "merge"}.get(op)
        return (
            birth_op == inverse_birth
            and (self.epoch - birth_epoch) < self.dwell_epochs
        )

    # ------------------------------------------------------------------
    # The loop body
    # ------------------------------------------------------------------

    def tick(self) -> dict:
        """One controller epoch: observe, filter, fire at most once.

        Returns the tick record (also appended to :attr:`events`):
        ``action`` is ``"idle"``, a fired surgery kind, or
        ``"refused:<kind>"`` when admission or the merge re-trip guard
        said no -- the routing table is untouched in that case.
        """
        if not self._lock.acquire(blocking=False):
            # Another tick is mid-flight (possibly mid-surgery): skip
            # this one entirely rather than queueing a second surgery
            # behind it -- at most one surgery is ever in flight, and
            # a delayed decision is re-derived fresh next tick anyway.
            record = {
                "tick": self.epoch,
                "at": round(self.clock(), 6),
                "action": "skip:surgery-in-flight",
            }
            self.counters["busy_skips"] += 1
            self.events.append(record)
            return record
        try:
            self.epoch += 1
            self.counters["ticks"] += 1
            record = {
                "tick": self.epoch,
                "at": round(self.clock(), 6),
                "action": "idle",
                "in_flight": self.cluster.router.in_flight(),
            }
            self._absorb_topology_events()

            # The merge dwell book ticks every epoch, fired or not: a
            # pair must be a candidate *this* tick and the dwell_epochs
            # before it; disappearing resets its clock to zero.
            merge_cands = self.topology.merge_candidates()
            current = {tuple(c["pair"]) for c in merge_cands}
            for pair in list(self._dwell):
                if pair not in current:
                    del self._dwell[pair]
            for pair in current:
                self._dwell[pair] = self._dwell.get(pair, 0) + 1

            decision = self._decide(merge_cands)
            if decision is not None:
                kind, info, thunk = decision
                self._fire(record, kind, info, thunk)
            self.events.append(record)
            return record
        finally:
            self._lock.release()

    def _decide(self, merge_cands: list[dict]):
        """First actionable surgery in priority order, post-hysteresis."""
        topology = self.topology
        for proposal in topology.drift.proposals():
            shard = proposal.shard
            if self._cooling(shard):
                self.counters["cooldown_vetoes"] += 1
                continue
            workload = topology._drift_workload(shard)
            center = topology.drift.live_center(shard)
            return (
                "re-tune",
                {"shard": shard, "drift": round(proposal.drift, 4)},
                lambda s=shard, w=workload, c=center: (
                    topology.re_tune_shard(s, workload=w, center=c)
                ),
            )
        for candidate in topology.split_candidates():
            shard = candidate["shard"]
            if self._cooling(shard):
                self.counters["cooldown_vetoes"] += 1
                continue
            if self._flap_veto(shard, "split"):
                self.counters["flap_vetoes"] += 1
                continue
            return (
                "split",
                {"shard": shard, "ratio": candidate["ratio"]},
                lambda s=shard: topology.split_shard(s),
            )
        for candidate in merge_cands:
            a, b = candidate["pair"]
            if self._dwell.get((a, b), 0) < self.dwell_epochs:
                self.counters["dwell_waits"] += 1
                continue
            if self._cooling(a) or self._cooling(b):
                self.counters["cooldown_vetoes"] += 1
                continue
            if self._flap_veto(a, "merge") or self._flap_veto(b, "merge"):
                self.counters["flap_vetoes"] += 1
                continue
            return (
                "merge",
                {"pair": [a, b], "ratio": candidate["ratio"]},
                lambda x=a, y=b: topology.merge_shards(x, y),
            )
        return None

    def _fire(self, record: dict, kind: str, info: dict, thunk) -> None:
        """Run one surgery; a typed refusal is recorded, never raised.

        Admission is charged inside the topology manager *before* the
        surgery touches the table, so every refusal here left the
        routing books exactly as they were.
        """
        # Defense-in-depth audit behind the veto: a firing that would
        # violate no-flap is the flap the counter exists to expose.
        flapped = (
            kind in ("split", "merge")
            and any(
                self._flap_veto(s, kind)
                for s in ([info["shard"]] if "shard" in info
                          else info["pair"])
            )
        )
        if flapped:
            self.flaps += 1
        self._surgery_in_flight = True
        try:
            result = thunk()
        except (BudgetExceededError, InputValidationError,
                PredictionError) as error:
            record.update(
                action=f"refused:{kind}",
                error=type(error).__name__,
                detail=str(error),
                **info,
            )
            self.counters[f"refused_{kind}"] += 1
        else:
            successors = (
                list(result) if isinstance(result, tuple) else [result]
            )
            record.update(action=kind, successors=successors, **info)
            self.counters[kind] += 1
            # Anchor the successors' births at *this* epoch right away
            # (not at the next tick) so their cool-down starts now.
            self._absorb_topology_events()
        finally:
            self._surgery_in_flight = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def report(self) -> dict:
        with self._lock:
            return {
                "epoch": self.epoch,
                "interval_s": self.interval_s,
                "dwell_epochs": self.dwell_epochs,
                "cooldown_epochs": self.cooldown_epochs,
                "running": self.running,
                "flaps": self.flaps,
                "counters": dict(self.counters),
                "born": {
                    shard: {"op": op, "epoch": epoch}
                    for shard, (op, epoch) in sorted(self._born.items())
                },
                "cooling": {
                    shard: until
                    for shard, until in sorted(self._cooldown_until.items())
                    if self.epoch < until
                },
                "dwell": {
                    f"{a}+{b}": ticks
                    for (a, b), ticks in sorted(self._dwell.items())
                },
                "events": list(self.events),
            }
