"""Similarity partitioning of a query workload into shards.

A heterogeneous workload -- queries drawn from regions of different
density and effective dimensionality -- is exactly the case where one
global index configuration leaves cost on the table (Pestov's lower
bounds make shards in different dimensionality regimes *provably*
different in cost profile).  The cluster therefore splits the query
stream by similarity: a seeded k-means over the query centers yields
``n_shards`` centroids, every future query is routed to its nearest
centroid's shard, and each shard's index configuration is tuned against
that shard's slice of the workload only.

Everything here is deterministic for a given seed: centroid
initialization draws from a seeded generator, Lloyd iterations are pure
numpy, and empty shards are re-seeded to the query farthest from every
centroid (which then claims at least itself), so the same workload and
seed always produce the same partition -- a requirement for the
bit-identity invariants the chaos harness checks across replicas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InputValidationError
from ..workload.queries import KNNWorkload

__all__ = ["WorkloadPartition", "partition_workload"]


def _distances_sq(queries: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared euclidean distances, shape ``(q, s)``."""
    diff = queries[:, None, :] - centroids[None, :, :]
    return np.einsum("qsd,qsd->qs", diff, diff)


@dataclass(frozen=True)
class WorkloadPartition:
    """A fitted similarity partition: centroids plus the fit assignment.

    ``centroids`` is ``(n_shards, d)``; ``assignments`` maps each query
    of the *fitting* workload to its shard.  :meth:`shard_of` extends
    the partition to arbitrary future queries (nearest centroid), which
    is what the cluster router uses at dispatch time.
    """

    centroids: np.ndarray
    assignments: np.ndarray

    @property
    def n_shards(self) -> int:
        return int(self.centroids.shape[0])

    def shard_of(self, queries: np.ndarray) -> np.ndarray:
        """Shard id of each query row (nearest centroid)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.centroids.shape[1]:
            raise InputValidationError(
                f"queries are {queries.shape[1]}-dimensional but the "
                f"partition was fitted in {self.centroids.shape[1]} "
                f"dimensions"
            )
        return np.argmin(_distances_sq(queries, self.centroids), axis=1)

    def slice(self, workload: KNNWorkload, shard: int) -> KNNWorkload:
        """The sub-workload of one shard (by nearest centroid)."""
        if not 0 <= shard < self.n_shards:
            raise InputValidationError(
                f"shard {shard} outside [0, {self.n_shards})"
            )
        mask = self.shard_of(workload.queries) == shard
        return KNNWorkload(
            k=workload.k,
            query_ids=workload.query_ids[mask],
            queries=workload.queries[mask],
            radii=workload.radii[mask],
        )

    def split(
        self, workload: KNNWorkload
    ) -> list[tuple[int, np.ndarray, KNNWorkload]]:
        """Split a workload into non-empty per-shard sub-workloads.

        Returns ``(shard, indices, sub_workload)`` triples where
        ``indices`` are the positions of the shard's queries in the
        original workload -- the router uses them to merge per-shard
        results back into original query order.
        """
        shards = self.shard_of(workload.queries)
        out = []
        for shard in range(self.n_shards):
            idx = np.flatnonzero(shards == shard)
            if idx.size == 0:
                continue
            out.append((shard, idx, KNNWorkload(
                k=workload.k,
                query_ids=workload.query_ids[idx],
                queries=workload.queries[idx],
                radii=workload.radii[idx],
            )))
        return out


def partition_workload(
    workload: KNNWorkload,
    n_shards: int,
    *,
    seed: int = 0,
    iterations: int = 8,
) -> WorkloadPartition:
    """Fit a seeded k-means partition over the workload's query centers.

    ``iterations`` Lloyd rounds are plenty at routing granularity --
    the partition only has to separate workload regimes, not solve
    clustering optimally.  Guaranteed post-conditions: exactly
    ``n_shards`` centroids, and every shard non-empty on the fitting
    workload.
    """
    queries = np.asarray(workload.queries, dtype=np.float64)
    q = queries.shape[0]
    if n_shards < 1:
        raise InputValidationError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > q:
        raise InputValidationError(
            f"cannot split {q} tuning queries into {n_shards} shards; "
            f"provide at least one query per shard"
        )
    rng = np.random.default_rng(seed)
    centroids = queries[rng.choice(q, size=n_shards, replace=False)].copy()

    def reseed_empty(assign: np.ndarray) -> bool:
        """Move each empty shard's centroid onto the farthest query."""
        moved = False
        for shard in range(n_shards):
            if np.any(assign == shard):
                continue
            nearest = _distances_sq(queries, centroids).min(axis=1)
            centroids[shard] = queries[int(np.argmax(nearest))]
            moved = True
        return moved

    assign = np.zeros(q, dtype=np.int64)
    for _ in range(max(1, iterations)):
        assign = np.argmin(_distances_sq(queries, centroids), axis=1)
        reseed_empty(assign)
        for shard in range(n_shards):
            members = queries[assign == shard]
            if members.shape[0]:
                centroids[shard] = members.mean(axis=0)
    assign = np.argmin(_distances_sq(queries, centroids), axis=1)
    # A reseeded centroid sits exactly on a query, which that query then
    # claims (distance zero), so one more pass settles every shard.
    if reseed_empty(assign):
        assign = np.argmin(_distances_sq(queries, centroids), axis=1)
    return WorkloadPartition(
        centroids=centroids.copy(), assignments=assign
    )
