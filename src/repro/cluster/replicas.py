"""One cluster replica: a prediction service plus its restart book.

A :class:`Replica` wraps a :class:`~repro.service.server.PredictionService`
with everything the cluster needs that a single service does not track:

* **its own artifact directory** -- replicas are each other's
  redundancy, so each keeps a private on-disk copy of every owned
  shard's warm-start artifact (the anti-entropy pass heals a corrupt
  copy from a peer's bytes);
* **a registration book** -- :meth:`kill` tears the service down,
  :meth:`restart` builds a fresh one and re-registers every owned shard
  from the book; re-registration warm-starts from the replica's own
  artifact store, so a restarted replica serves bit-identical answers
  without refitting;
* **retired-op accounting** -- a killed service's ledgers die with it,
  so :meth:`kill` folds each shard's charged ops into ``retired_ops``
  first; :meth:`charged_ops` (retired + live) is what the cluster
  chaos harness reconciles across restarts.  :meth:`retire` is the
  scale-in variant (fold the books, then drop the service reference
  for good), and :meth:`retire_shard` folds a single shard's ledger
  when a split or re-tune moves its traffic to successor shard ids;
* **injection points** -- ``slow_s`` delays every request (the slow
  replica the router must hedge around) and ``request_hook`` raises
  into the serving path (the faulty replica whose typed error responses
  trip the router's breaker), both mutable mid-run by the chaos
  harness.

Replica heterogeneity is expressed *only* as ``latency_factor``, a
routing-cost multiplier -- never as divergent index configuration,
which would break the failover bit-identity guarantee.
"""

from __future__ import annotations

import time
from collections import Counter
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import InputValidationError
from ..service.server import PendingPrediction, PredictionService
from ..service.tenancy import TenantQuota
from ..workload.queries import KNNWorkload, RangeWorkload
from .tuning import ShardConfig

__all__ = ["Replica", "shard_tenant"]


def shard_tenant(shard: int) -> str:
    """The tenant (and artifact) key a shard registers under."""
    return f"shard-{shard}"


class Replica:
    """A restartable prediction service owning a set of shards."""

    def __init__(
        self,
        name: str,
        *,
        artifact_dir: str | Path,
        workers: int = 2,
        max_queue: int = 32,
        memory: int = 2_000,
        kernel: str | None = None,
        latency_factor: float = 1.0,
        quota: TenantQuota | None = None,
        coalesce: bool = False,
        coalesce_window_ms: float = 2.0,
    ):
        if latency_factor <= 0:
            raise InputValidationError(
                f"latency_factor must be positive, got {latency_factor}"
            )
        self.name = name
        self.artifact_dir = Path(artifact_dir)
        self.latency_factor = latency_factor
        #: chaos injection points, mutable mid-run
        self.slow_s = 0.0
        self.request_hook: Callable | None = None
        #: charged ops folded out of killed services, per shard
        self.retired_ops: Counter = Counter()
        self.kills = 0
        self.restarts = 0
        self.down = False
        self.retired = False
        self._quota = quota
        self._registered: dict[int, dict] = {}
        self._service_kwargs = dict(
            workers=workers, max_queue=max_queue, memory=memory,
            kernel=kernel, artifact_dir=str(self.artifact_dir),
            coalesce=coalesce, coalesce_window_ms=coalesce_window_ms,
        )
        self.service = self._new_service()
        self.service.start()

    def _hook(self, item) -> None:
        # Bound once at service construction; reads the mutable chaos
        # knobs at request time so the harness can flip them mid-storm.
        if self.slow_s:
            time.sleep(self.slow_s)
        if self.request_hook is not None:
            self.request_hook(item)

    def _new_service(self) -> PredictionService:
        return PredictionService(
            pre_request_hook=self._hook, **self._service_kwargs
        )

    # ------------------------------------------------------------------
    # Shard ownership
    # ------------------------------------------------------------------

    def register_shard(
        self,
        shard: int,
        points: np.ndarray,
        config: ShardConfig,
        *,
        fit_seed: int = 0,
    ) -> None:
        """Own a shard: register its tenant with the tuned configuration.

        The registration is recorded so :meth:`restart` can replay it.
        Every owner of a shard registers with the identical tuned disk
        parameters, capacities, and ``fit_seed`` -- the precondition for
        bit-identical warm artifacts across peers.
        """
        self._registered[shard] = {
            "points": points, "config": config, "fit_seed": fit_seed,
        }
        self._register(shard)

    def _register(self, shard: int) -> None:
        reg = self._registered[shard]
        config: ShardConfig = reg["config"]
        self.service.register_tenant(
            shard_tenant(shard), reg["points"],
            quota=self._quota,
            fit_seed=reg["fit_seed"],
            disk_parameters=config.disk,
            c_data=config.c_data,
            c_dir=config.c_dir,
        )

    def shards(self) -> list[int]:
        return sorted(self._registered)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def kill(self) -> None:
        """Tear the service down, folding live ledgers into the book.

        ``stop()`` drains the queue (queued requests resolve with typed
        shutdown errors) and joins the workers, so every settle has
        landed before the ledgers are folded -- no charge is lost
        between a kill and the post-storm reconciliation.  Idempotent.
        """
        if self.down:
            return
        self.service.stop()
        for shard in self._registered:
            ledger = self.service.tenant(shard_tenant(shard)).ledger
            self.retired_ops[shard] += ledger.charged_ops
        self.kills += 1
        self.down = True

    def restart(self) -> None:
        """Fresh service, every owned shard re-registered from the book.

        Re-registration warm-starts from this replica's own artifact
        store -- a verified artifact loads bit-identically, a corrupt
        one is rebuilt (and the rebuild shows in the store's events, so
        the chaos harness can tell healing from refitting).  Idempotent
        on a live replica.
        """
        if self.retired:
            raise InputValidationError(
                f"replica {self.name!r} was retired by a scale-in and "
                f"cannot restart; scale out a new replica instead"
            )
        if not self.down:
            return
        self.service = self._new_service()
        self.service.start()
        for shard in self._registered:
            self._register(shard)
        self.restarts += 1
        self.down = False

    def retire(self) -> None:
        """Permanent scale-in removal: fold the books exactly as a kill.

        :meth:`kill` stops the service and folds every owned shard's
        live ledger into ``retired_ops``; retiring then drops the
        service reference for good, so a dispatch racing the removal
        observes ``service is None`` and takes the router's ghost-skip
        path instead of an ``AttributeError``.  The caller must drain
        in-flight legs *before* retiring (``stop()`` inside ``kill``
        resolves the queue, and a resolved leg has settled its ledger),
        which is what makes the fold exact.  Idempotent.
        """
        self.kill()
        self.retired = True
        self.service = None

    def retire_shard(self, shard: int) -> None:
        """Drop ownership of one shard, folding its live ledger first.

        Used when a split or re-tune replaces a shard with successor
        ids: the old tenant's charges move to ``retired_ops`` under the
        *old* shard id, so per-shard books still reconcile across the
        epoch boundary.  The caller must have drained in-flight legs
        first (a drained leg has settled its ledger).  No-op for an
        unowned shard; on a down replica the ledger was already folded
        by the kill.
        """
        if shard not in self._registered:
            return
        if not self.down and self.service is not None:
            ledger = self.service.tenant(shard_tenant(shard)).ledger
            self.retired_ops[shard] += ledger.charged_ops
        del self._registered[shard]

    def healthy(self) -> bool:
        """Liveness as the router's health probe sees it."""
        if self.down or self.service is None:
            return False
        snapshot = self.service.metrics()
        return bool(snapshot["running"]) and snapshot["workers_alive"] > 0

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def submit(
        self,
        shard: int,
        workload: KNNWorkload | RangeWorkload,
        *,
        method: str = "warm",
        seed: int = 0,
    ) -> PendingPrediction:
        if shard not in self._registered:
            raise InputValidationError(
                f"replica {self.name!r} does not own shard {shard}; "
                f"owns {self.shards()}"
            )
        # Snapshot the reference: a concurrent retire() nulls
        # ``self.service``, and a submit that loses that race must
        # surface as a typed refusal the router files under its
        # ghost-skip path -- never as an AttributeError.
        service = self.service
        if self.down or service is None:
            raise InputValidationError(
                f"replica {self.name!r} is "
                f"{'retired' if self.retired else 'down'}; "
                f"cannot submit shard {shard}"
            )
        return service.submit(
            shard_tenant(shard), workload, method=method, seed=seed
        )

    # ------------------------------------------------------------------
    # Books
    # ------------------------------------------------------------------

    def charged_ops(self, shard: int) -> int:
        """This replica's lifetime charged ops for one shard, across
        every kill/restart generation."""
        total = int(self.retired_ops.get(shard, 0))
        if (not self.down and self.service is not None
                and shard in self._registered):
            total += self.service.tenant(shard_tenant(shard)).ledger.charged_ops
        return total

    def artifact_path(self, shard: int) -> Path:
        if self.service is None or self.service.store is None:
            raise InputValidationError(
                f"replica {self.name!r} has no artifact store "
                f"{'(retired)' if self.retired else ''}"
            )
        return self.service.store.path_for(shard_tenant(shard))

    def adopt_shard_bytes(self, shard: int, data: bytes):
        """Install a peer's verified artifact bytes for a shard.

        The scale-out warm path: the new replica adopts an existing
        owner's bytes *before* registering the shard, so the
        registration's ``load_or_fit`` is a verified hit and the warm
        start costs zero refits.  Returns the adopted model.
        """
        if self.down or self.service is None or self.service.store is None:
            raise InputValidationError(
                f"replica {self.name!r} cannot adopt artifact bytes "
                f"while down or storeless"
            )
        return self.service.store.adopt(shard_tenant(shard), data)

    def adopt_model(self, shard: int, model) -> None:
        """Swap the live tenant's warm model (after an artifact heal)."""
        if (not self.down and self.service is not None
                and shard in self._registered):
            self.service.tenant(shard_tenant(shard)).model = model

    def metrics(self) -> dict:
        info = {
            "name": self.name,
            "down": self.down,
            "retired": self.retired,
            "latency_factor": self.latency_factor,
            "kills": self.kills,
            "restarts": self.restarts,
            "shards": self.shards(),
            "retired_ops": dict(self.retired_ops),
        }
        if not self.down:
            info["service"] = self.service.metrics()
        return info
