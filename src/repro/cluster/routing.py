"""Failure-aware routing: cost-ordered candidates, breakers, hedging.

The router owns the request path of the cluster.  For each shard the
:class:`RoutingTable` lists the owning replicas ordered by predicted
cost (the shard's tuned per-query seconds times each owner's latency
factor -- the cost oracle built at cluster construction).  A dispatch
walks that order, skipping candidates the health probe or the
per-replica circuit breaker rules out, and records *why* each skipped
or failed candidate was passed over -- the ``tried`` list is the causal
record a failover response carries.

Two failure modes get special handling:

* **slow primary** -- after ``hedge_after_s`` without a verdict the
  dispatch moves on to the next candidate *without abandoning the
  first*: the outstanding leg keeps running (a submitted request always
  resolves and always settles its ledger), and whichever leg finishes
  first with a usable verdict is served.  Loser legs are retained on
  the response and resolved by :meth:`Router.drain`, so the
  reconciliation invariant can account for every charged op including
  hedged losers.
* **every owner down** -- with ``degrade=True`` and a fallback
  installed, the router serves an explicitly *degraded* closed-form
  answer (``method_used="closed_form"``, ``cause="unavailable"``);
  otherwise the response is a typed
  :class:`~repro.errors.ReplicaUnavailableError` carrying the full
  ``tried`` record.  Either way the request terminates -- the no-hang
  invariant extends cluster-wide.

The table is deliberately allowed to go stale (chaos keeps routing to
a killed replica on purpose): an entry naming a dead or unknown replica
costs one recorded skip, never a hang or an untyped error.

**Epoch fencing.**  Topology changes (scale-out/in, shard splits)
publish a whole new table under a strictly larger ``epoch``.  A
dispatch snapshots the table once, tags every leg it submits with the
snapshot's epoch, and -- when the caller pins an ``epoch=`` -- is
refused with a typed :class:`~repro.errors.StaleRoutingEpochError` if
the pin no longer matches the live table.  In-flight legs admitted
under the old epoch keep running to completion (nothing already
submitted is dropped), and :meth:`Router.epoch_ops` reconciles the
charged ops of the two-epoch overlap window exactly: summed across
epochs it equals :meth:`Router.drain` to the op.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..core.counting import PredictionResult
from ..errors import (
    CircuitOpenError,
    InputValidationError,
    ReplicaUnavailableError,
    ReproError,
    StaleRoutingEpochError,
)
from ..runtime.breaker import CircuitBreaker
from ..service.server import PendingPrediction, ServiceResponse
from ..workload.queries import KNNWorkload, RangeWorkload
from .replicas import Replica

__all__ = ["ClusterResponse", "Router", "RoutingTable"]

#: how long drain() waits on any single outstanding leg; the service
#: no-hang guarantee makes expiry here a bug, not a slow request
_DRAIN_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class RoutingTable:
    """Versioned shard -> owners map, owners ordered cheapest first.

    ``costs`` keeps the oracle's prediction per (shard, owner) so the
    ordering is auditable.  Tables are immutable; a topology change
    installs a new table with a bumped ``version`` (responses record
    the version that routed them, so staleness is diagnosable).

    ``epoch`` is the fencing token: it moves strictly forward on every
    *topology* change (membership or shard-set changes), while
    ``version`` counts every install (a cost refresh may bump the
    version inside one epoch).  Dispatches pinned to an old epoch are
    refused with a typed error; legs are tagged with the epoch that
    admitted them so the handoff window reconciles exactly.
    """

    version: int
    owners: dict[int, tuple[str, ...]]
    costs: dict[int, dict[str, float]]
    epoch: int = 1

    def owners_of(self, shard: int) -> tuple[str, ...]:
        return self.owners.get(shard, ())

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "epoch": self.epoch,
            "owners": {s: list(o) for s, o in sorted(self.owners.items())},
            "costs": {
                s: {n: round(c, 6) for n, c in costs.items()}
                for s, costs in sorted(self.costs.items())
            },
        }


class _Leg:
    """One submitted attempt of one cluster request."""

    def __init__(self, replica: str, shard: int, pending: PendingPrediction,
                 epoch: int = 0):
        self.replica = replica
        self.shard = shard
        self.pending = pending
        self.epoch = epoch
        self._response: ServiceResponse | None = None

    def wait(self, timeout: float | None) -> ServiceResponse:
        if self._response is None:
            self._response = self.pending.result(timeout)
        return self._response

    def done(self) -> bool:
        return self.pending.done()


@dataclass
class ClusterResponse:
    """The terminal verdict of one routed request.

    ``status`` mirrors the service (``ok`` / ``degraded`` / ``error``);
    a closed-form fallback served because every owner was down is
    ``degraded`` with ``method_used="closed_form"`` and
    ``cause="unavailable"``.  ``served_by`` names the replica whose leg
    won (``None`` for fallback/error verdicts); ``failover_from`` names
    the primary owner when someone else served, and ``tried`` is the
    causal record of every candidate passed over -- ``(name, reason)``
    pairs.  ``legs`` holds every submitted attempt, winners and hedged
    losers alike, so :meth:`charged_ops` can sum the request's *whole*
    charged footprint once the router has drained.
    """

    shard: int
    request_id: int
    status: str
    result: PredictionResult | None = None
    method_requested: str = "warm"
    method_used: str | None = None
    served_by: str | None = None
    failover_from: str | None = None
    hedged: bool = False
    tried: list = field(default_factory=list)
    cause: str | None = None
    error: str | None = None
    error_type: str | None = None
    routing_version: int = 0
    routing_epoch: int = 0
    latency_s: float = 0.0
    legs: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def charged_ops(self) -> int:
        """Charged ops across every leg of this request (call after
        :meth:`Router.drain`; an unresolved leg blocks briefly)."""
        return sum(
            leg.wait(_DRAIN_TIMEOUT_S).io_ops for leg in self.legs
        )


class Router:
    """Cost-ordered, breaker-guarded, hedging dispatcher."""

    def __init__(
        self,
        replicas: dict[str, Replica],
        table: RoutingTable,
        *,
        hedge_after_s: float = 0.05,
        request_timeout_s: float = 30.0,
        degraded_fallback: Callable[
            [int, KNNWorkload | RangeWorkload], PredictionResult
        ] | None = None,
        breaker_cooldown_s: float = 0.2,
    ):
        self.replicas = replicas
        self.table = table
        self.hedge_after_s = hedge_after_s
        self.request_timeout_s = request_timeout_s
        self.degraded_fallback = degraded_fallback
        self._breaker_cooldown_s = breaker_cooldown_s
        # Breakers are per (replica, shard) -- the granularity at which
        # failures actually happen (a tenant on a faulty path).  A
        # replica erroring on one shard must not lose its standing as
        # another shard's failover target, or a single fault could
        # defeat the single-kill availability guarantee.
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}
        self._ids = itertools.count(1)
        self._legs: list[_Leg] = []
        self._lock = threading.Lock()
        #: lifetime counters
        self.dispatches = 0
        self.failovers = 0
        self.hedges = 0
        self.degraded_served = 0
        self.unavailable = 0
        self.table_installs = 0
        self.stale_rejections = 0

    # ------------------------------------------------------------------

    def install_table(self, table: RoutingTable) -> None:
        """Publish a new table; the epoch may only move forward.

        Same-epoch installs with a fresh version are allowed (a cost
        refresh is not a topology change), but an epoch or a
        same-epoch version *regression* would re-admit a topology the
        cluster already fenced off -- that is a caller bug, refused
        with a typed error.
        """
        with self._lock:
            current = self.table
            if table.epoch < current.epoch or (
                table.epoch == current.epoch
                and table.version < current.version
            ):
                raise InputValidationError(
                    f"routing table regression: refusing epoch "
                    f"{table.epoch} v{table.version} over installed "
                    f"epoch {current.epoch} v{current.version}"
                )
            self.table = table
            self.table_installs += 1

    def breaker_for(self, name: str, shard: int) -> CircuitBreaker:
        with self._lock:
            key = (name, shard)
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=0.5, window=8, min_calls=2,
                    cooldown_s=self._breaker_cooldown_s,
                )
                self._breakers[key] = breaker
            return breaker

    def reset_breakers(self, name: str) -> None:
        """Force-close every breaker of one replica (it restarted)."""
        with self._lock:
            breakers = [
                b for (n, _), b in self._breakers.items() if n == name
            ]
        for breaker in breakers:
            breaker.reset()

    def probe(self) -> dict:
        """Health snapshot the routing decisions are based on."""
        with self._lock:
            states = {
                f"{name}/shard-{shard}": breaker.state
                for (name, shard), breaker in sorted(self._breakers.items())
            }
        return {
            "replicas": {
                name: replica.healthy()
                for name, replica in self.replicas.items()
            },
            "breakers": states,
        }

    # ------------------------------------------------------------------

    def dispatch(
        self,
        shard: int,
        workload: KNNWorkload | RangeWorkload,
        *,
        method: str = "warm",
        seed: int = 0,
        degrade: bool = True,
        epoch: int | None = None,
    ) -> ClusterResponse:
        """Route one request; always returns a terminal verdict.

        ``epoch`` pins the dispatch to a routing epoch the caller read
        earlier: if a topology change has moved the table past it, the
        request is refused with a typed
        :class:`~repro.errors.StaleRoutingEpochError` *before* any leg
        is submitted -- a stale router must re-read and retry, never
        dispatch against a ghost topology.  ``None`` (the default)
        accepts whatever table is live.  The table is snapshotted once
        per dispatch, so a concurrent install cannot split one request
        across two topologies.
        """
        started = time.monotonic()
        deadline = started + self.request_timeout_s
        request_id = next(self._ids)
        with self._lock:
            table = self.table
            if epoch is not None and epoch != table.epoch:
                self.stale_rejections += 1
                stale = StaleRoutingEpochError(shard, epoch, table.epoch)
            else:
                stale = None
                self.dispatches += 1
        if stale is not None:
            raise stale
        owners = table.owners_of(shard)
        tried: list[tuple[str, str]] = []
        legs: list[_Leg] = []
        hedged = False

        def verdict_of(leg: _Leg, response: ServiceResponse
                       ) -> ClusterResponse | None:
            """A usable verdict wins; an error response feeds the
            breaker and the tried record, and the walk continues."""
            if response.status == "error":
                self.breaker_for(leg.replica, shard).record_failure()
                tried.append((leg.replica, f"error:{response.error_type}"))
                return None
            self.breaker_for(leg.replica, shard).record_success()
            primary = owners[0] if owners else None
            failover_from = (primary if leg.replica != primary else None)
            if failover_from is not None:
                with self._lock:
                    self.failovers += 1
            return ClusterResponse(
                shard=shard,
                request_id=request_id,
                status=response.status,
                result=response.result,
                method_requested=method,
                method_used=response.method_used,
                served_by=leg.replica,
                failover_from=failover_from,
                hedged=hedged,
                tried=list(tried),
                cause=response.cause,
                routing_version=table.version,
                routing_epoch=table.epoch,
                latency_s=time.monotonic() - started,
                legs=list(legs),
            )

        # --- phase 1: walk the cost order, hedging past slow legs -----
        for name in owners:
            replica = self.replicas.get(name)
            if replica is None or replica.service is None:
                # Stale table entry: the name is unknown, or the
                # replica was retired by a scale-in after the table
                # snapshot -- either way a recorded skip, not a crash.
                tried.append((name, "unknown"))
                continue
            if not replica.healthy():
                tried.append((name, "down"))
                continue
            breaker = self.breaker_for(name, shard)
            try:
                breaker.before_attempt()
            except CircuitOpenError:
                tried.append((name, "circuit-open"))
                continue
            try:
                pending = replica.submit(
                    shard, workload, method=method, seed=seed
                )
            except ReproError as error:
                if replica.service is None or replica.down:
                    # Lost the race against a removal/kill between the
                    # health probe and the submit: same ghost-skip
                    # verdict as a stale entry, and no breaker penalty
                    # -- the replica is gone, not misbehaving.
                    tried.append((name, "down"))
                    continue
                breaker.record_failure()
                tried.append((name, type(error).__name__))
                continue
            leg = _Leg(name, shard, pending, epoch=table.epoch)
            legs.append(leg)
            with self._lock:
                self._legs.append(leg)
            try:
                response = leg.wait(
                    min(self.hedge_after_s, max(0.0, deadline - time.monotonic()))
                )
            except TimeoutError:
                # Slow leg: hedge to the next candidate, leave this one
                # running -- it may still win in phase 2.
                tried.append((name, "slow"))
                hedged = True
                with self._lock:
                    self.hedges += 1
                continue
            won = verdict_of(leg, response)
            if won is not None:
                return won

        # --- phase 2: wait out the hedged legs until the deadline -----
        settled: set[int] = set()
        while time.monotonic() < deadline:
            outstanding = [
                leg for i, leg in enumerate(legs)
                if i not in settled and leg.done()
            ]
            for leg in outstanding:
                settled.add(legs.index(leg))
                won = verdict_of(leg, leg.wait(0.0))
                if won is not None:
                    return won
            if len(settled) == len(legs):
                break
            time.sleep(0.002)

        # --- no leg produced a verdict: degrade or fail, typed --------
        error = ReplicaUnavailableError(shard, tried)
        if (degrade and self.degraded_fallback is not None):
            result = self.degraded_fallback(shard, workload)
            with self._lock:
                self.degraded_served += 1
            return ClusterResponse(
                shard=shard,
                request_id=request_id,
                status="degraded",
                result=result,
                method_requested=method,
                method_used="closed_form",
                hedged=hedged,
                tried=list(tried),
                cause="unavailable",
                error=str(error),
                error_type=type(error).__name__,
                routing_version=table.version,
                routing_epoch=table.epoch,
                latency_s=time.monotonic() - started,
                legs=list(legs),
            )
        with self._lock:
            self.unavailable += 1
        return ClusterResponse(
            shard=shard,
            request_id=request_id,
            status="error",
            method_requested=method,
            hedged=hedged,
            tried=list(tried),
            cause="unavailable",
            error=str(error),
            error_type=type(error).__name__,
            routing_version=table.version,
            routing_epoch=table.epoch,
            latency_s=time.monotonic() - started,
            legs=list(legs),
        )

    # ------------------------------------------------------------------

    def drain(self, *, timeout_s: float = _DRAIN_TIMEOUT_S) -> Counter:
        """Resolve every leg ever submitted; per-shard charged-op sums.

        Hedged loser legs keep running after their request was served;
        reconciliation is only exact once they have all settled.  The
        per-leg timeout leans on the service no-hang guarantee -- an
        expiry raises :class:`TimeoutError` and *is* a violation.
        """
        shard_ops: Counter = Counter()
        with self._lock:
            legs = list(self._legs)
        for leg in legs:
            shard_ops[leg.shard] += leg.wait(timeout_s).io_ops
        return shard_ops

    def epoch_ops(
        self, *, timeout_s: float = _DRAIN_TIMEOUT_S
    ) -> dict[int, Counter]:
        """Charged ops per (routing epoch, shard) over every leg ever.

        Every leg is tagged with the epoch of the table snapshot that
        admitted it, so the two-epoch overlap window of a topology
        handoff is *exactly* attributable: summed across epochs these
        books equal :meth:`drain` per shard to the op -- a charge that
        straddled the fence lands in the epoch that submitted it, once,
        never dropped, never double-counted.
        """
        books: dict[int, Counter] = {}
        with self._lock:
            legs = list(self._legs)
        for leg in legs:
            ops = leg.wait(timeout_s).io_ops
            books.setdefault(leg.epoch, Counter())[leg.shard] += ops
        return books

    def in_flight(self) -> int:
        """Legs submitted but not yet resolved.

        The controller's tick records this gauge so a surgery decision
        is attributable to the load it was made under, and load tests
        report it at window edges.
        """
        with self._lock:
            legs = list(self._legs)
        return sum(1 for leg in legs if not leg.done())

    def metrics(self) -> dict:
        with self._lock:
            return {
                "dispatches": self.dispatches,
                "failovers": self.failovers,
                "hedges": self.hedges,
                "degraded_served": self.degraded_served,
                "unavailable": self.unavailable,
                "table_installs": self.table_installs,
                "stale_rejections": self.stale_rejections,
                "legs": len(self._legs),
                "routing_epoch": self.table.epoch,
                "routing_version": self.table.version,
                "breakers": {
                    f"{name}/shard-{shard}": breaker.state
                    for (name, shard), breaker
                    in sorted(self._breakers.items())
                },
            }
