"""The sharded prediction cluster: partition, tune, replicate, route.

:class:`PredictionCluster` composes every resilience layer the repo has
built so far into one distributed-serving front end:

1. **partition** -- the tuning workload is split by similarity
   (seeded k-means, :mod:`.partition`) and the *dataset* is split by
   the same centroids, so each shard serves the queries nearest its own
   data region;
2. **tune** -- each shard's index configuration comes from running the
   page-size tuning application on that shard's data and workload slice
   (:mod:`.tuning`), with the sampling predictor as the cost oracle --
   the cluster-then-tune-then-reroute loop;
3. **replicate** -- each shard is placed on ``replication`` replicas
   (ring placement), every owner registering the *identical* tuned
   configuration and fit seed, so the owners' warm-start artifacts are
   bit-identical and any owner can serve any of the shard's requests
   with a bit-identical answer;
4. **route** -- a failure-aware :class:`~.routing.Router` picks the
   cheapest healthy owner per request and fails over (breakers,
   hedging, typed unavailability, closed-form degradation).

Replicas double as each other's redundancy: :meth:`anti_entropy`
verifies every owner's on-disk artifact and heals a corrupt or
version-skewed copy *bit-identically from a peer's bytes* (adoption),
falling back to a single rebuild-from-data only when every copy of a
shard is bad -- PR 4's repair-on-read semantics lifted to the cluster.

**Elastic topology.**  The topology set at construction is a starting
point, not a contract: a :class:`~.elasticity.TopologyManager`
(``self.topology``) can add and remove replicas, split a shard whose
tuned cost diverges from its siblings, merge a sibling pair stranded
cheap by load decay, and re-tune a shard whose live queries have
drifted from its centroid -- all behind an epoch-fenced routing-table
handoff (see :mod:`.elasticity`).  A
:class:`~.controller.TopologyController`
(:meth:`start_controller`) closes the policy loop autonomously, with
hysteresis so the topology never flaps.  Two bookkeeping rules
make that safe: **shard ids are never reused** (successor shards mint
fresh ids from ``_next_shard_id``, because a reused id would collide
with the retired shard's artifact key and ledger history -- so the
partitioner's centroid *rows* map to shard ids through
``_row_to_shard``), and **nothing is deleted from the books**
(removed replicas move to ``retired_replicas``, replaced shards to
``retired_shards``, and :meth:`charged_ops` sums across all of them).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..baselines.uniform_model import UniformCostModel
from ..core.counting import PredictionResult
from ..core.topology import Topology
from ..disk.accounting import DiskParameters
from ..errors import (
    ArtifactCorruptError,
    InputValidationError,
    PredictionError,
    validate_points,
)
from ..runtime.budget import Budget
from ..service.tenancy import TenantQuota
from ..workload.queries import KNNWorkload
from .controller import TopologyController
from .elasticity import TopologyManager
from .partition import WorkloadPartition, partition_workload
from .replicas import Replica, shard_tenant
from .routing import ClusterResponse, Router, RoutingTable
from .tuning import DEFAULT_TUNING_PAGE_SIZES, ShardConfig, tune_shard

__all__ = ["ClusterPrediction", "PredictionCluster"]

#: a shard whose data slice is thinner than this serves the full
#: dataset instead -- a geometry cannot be fitted on a sliver
_MIN_SHARD_POINTS = 8


class ClusterPrediction:
    """A full-workload prediction merged back from per-shard verdicts.

    ``responses`` is one :class:`~.routing.ClusterResponse` per
    non-empty shard; ``per_query`` is the merged estimate in original
    query order with ``NaN`` at positions whose shard returned an error
    verdict (``complete`` is ``False`` then).
    """

    def __init__(self, per_query: np.ndarray,
                 responses: list[ClusterResponse]):
        self.per_query = per_query
        self.responses = responses

    @property
    def complete(self) -> bool:
        return bool(np.all(np.isfinite(self.per_query)))

    @property
    def mean_accesses(self) -> float:
        return float(np.mean(self.per_query))


class PredictionCluster:
    """N replicas, similarity-sharded and failure-aware routed."""

    def __init__(
        self,
        data: np.ndarray,
        tuning_workload: KNNWorkload,
        *,
        artifact_root: str | Path,
        n_shards: int = 2,
        n_replicas: int = 3,
        replication: int = 2,
        workers_per_replica: int = 2,
        max_queue: int = 32,
        memory: int = 2_000,
        fit_seed: int = 0,
        seed: int = 0,
        page_sizes: tuple[int, ...] = DEFAULT_TUNING_PAGE_SIZES,
        tuning_method: str = "cutoff",
        base_disk: DiskParameters | None = None,
        kernel: str | None = None,
        quota: TenantQuota | None = None,
        latency_factors: dict[str, float] | None = None,
        hedge_after_s: float = 0.05,
        request_timeout_s: float = 30.0,
        breaker_cooldown_s: float = 0.2,
        split_when: float = 3.0,
        merge_when: float = 1.5,
        drift_threshold: float = 0.35,
        min_drift_observations: int = 24,
        reorg_budget: Budget | None = None,
        coalesce: bool = False,
        coalesce_window_ms: float = 2.0,
    ):
        if n_replicas < 1:
            raise InputValidationError(
                f"n_replicas must be >= 1, got {n_replicas}"
            )
        if not 1 <= replication <= n_replicas:
            raise InputValidationError(
                f"replication must be in [1, n_replicas={n_replicas}], "
                f"got {replication}"
            )
        data = validate_points(data)
        self.data = data
        self.replication = replication
        self.fit_seed = fit_seed
        # Tuning inputs kept for elastic reorganization: a split or
        # re-tune re-runs the same tune_shard call on a new slice.
        self.seed = seed
        self.memory = memory
        self.page_sizes = page_sizes
        self.tuning_method = tuning_method
        self.base_disk = base_disk
        self.kernel = kernel
        self.tuning_workload = tuning_workload

        # 1. partition: queries by similarity, data by the same centroids
        self.partition: WorkloadPartition = partition_workload(
            tuning_workload, n_shards, seed=seed
        )
        #: centroid row -> shard id.  Rows and ids coincide at
        #: construction; splits and re-tunes mint fresh ids (never
        #: reused) while the partitioner keeps addressing rows.
        self._row_to_shard: list[int] = list(range(n_shards))
        self._next_shard_id = n_shards
        self.retired_replicas: dict[str, Replica] = {}
        self.retired_shards: dict[int, dict] = {}
        data_shards = self.partition.shard_of(data)
        self.shard_points: dict[int, np.ndarray] = {}
        #: global dataset index -> this shard's local row (query ids of
        #: the paper's workloads index the dataset; the phased methods
        #: read query points by id from the shard's own file, so ids
        #: must be re-anchored to the slice)
        self._local_ids: dict[int, dict[int, int]] = {}
        for shard in range(n_shards):
            idx = np.flatnonzero(data_shards == shard)
            if idx.size < _MIN_SHARD_POINTS:
                # a sliver cannot carry a fitted geometry: serve the
                # full dataset (ids then map to themselves)
                self.shard_points[shard] = data
                self._local_ids[shard] = {
                    i: i for i in range(data.shape[0])
                }
            else:
                self.shard_points[shard] = data[idx]
                self._local_ids[shard] = {
                    int(g): local for local, g in enumerate(idx)
                }

        # 2. tune: each shard's configuration from its own slices
        self.shard_configs: dict[int, ShardConfig] = {}
        #: the remapped tuning slice each shard was tuned on, kept so a
        #: split can re-partition exactly what construction saw
        self.tuning_slices: dict[int, KNNWorkload] = {}
        for shard in range(n_shards):
            slice_workload = self._remap(
                shard, self.partition.slice(tuning_workload, shard)
            )
            if slice_workload.n_queries == 0:  # unreachable post-fit
                raise PredictionError(
                    f"shard {shard} received no tuning queries"
                )
            self.tuning_slices[shard] = slice_workload
            self.shard_configs[shard] = tune_shard(
                shard, self.shard_points[shard], slice_workload,
                memory=memory, page_sizes=page_sizes,
                base_disk=base_disk, method=tuning_method,
                seed=seed, kernel=kernel,
            )

        # 3. replicate: ring placement, identical config per owner
        self._artifact_root = Path(artifact_root)
        # coalescing is replica-side: the router already forwards one
        # shard-local multi-query batch per leg, so fusing happens in
        # each replica's service, leaving hedging and epoch fencing
        # untouched
        self._replica_kwargs = dict(
            workers=workers_per_replica, max_queue=max_queue,
            memory=memory, kernel=kernel, quota=quota,
            coalesce=coalesce, coalesce_window_ms=coalesce_window_ms,
        )
        factors = latency_factors or {}
        self.replicas: dict[str, Replica] = {}
        names = [f"replica-{i}" for i in range(n_replicas)]
        for name in names:
            self.replicas[name] = self._new_replica(
                name, factors.get(name, 1.0)
            )
        owners: dict[int, tuple[str, ...]] = {}
        costs: dict[int, dict[str, float]] = {}
        for shard in range(n_shards):
            placed = [names[(shard + j) % n_replicas]
                      for j in range(replication)]
            config = self.shard_configs[shard]
            for name in placed:
                self.replicas[name].register_shard(
                    shard, self.shard_points[shard], config,
                    fit_seed=fit_seed,
                )
            cost = {
                name: config.predicted_seconds
                * self.replicas[name].latency_factor
                for name in placed
            }
            ordered = tuple(sorted(placed, key=lambda n: (cost[n], n)))
            owners[shard] = ordered
            costs[shard] = cost

        # 4. route
        self.router = Router(
            self.replicas,
            RoutingTable(version=1, epoch=1, owners=owners, costs=costs),
            hedge_after_s=hedge_after_s,
            request_timeout_s=request_timeout_s,
            degraded_fallback=self._closed_form,
            breaker_cooldown_s=breaker_cooldown_s,
        )

        # 5. elasticity: runtime topology surgery behind the epoch fence
        self.topology = TopologyManager(
            self,
            split_when=split_when,
            merge_when=merge_when,
            drift_threshold=drift_threshold,
            min_drift_observations=min_drift_observations,
            reorg_budget=reorg_budget,
        )
        #: the autonomous policy loop, attached on demand
        self.controller: TopologyController | None = None

    def _new_replica(self, name: str, latency_factor: float = 1.0
                     ) -> Replica:
        """Build one replica under this cluster's uniform service
        parameters (scale-out uses the same constructor construction
        did, so a scaled-out replica differs only by latency factor)."""
        return Replica(
            name,
            artifact_dir=self._artifact_root / name,
            latency_factor=latency_factor,
            **self._replica_kwargs,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    def active_shards(self) -> list[int]:
        """Shard ids currently routable (retired ids excluded)."""
        return sorted(self._row_to_shard)

    def _row_of(self, shard: int) -> int:
        """The partitioner's centroid row backing an active shard id."""
        try:
            return self._row_to_shard.index(shard)
        except ValueError:
            raise InputValidationError(
                f"shard {shard} is not active; active shards are "
                f"{self.active_shards()}"
            ) from None

    def shard_of(self, queries: np.ndarray) -> np.ndarray:
        """Shard *ids* (not centroid rows) for a batch of queries."""
        rows = self.partition.shard_of(queries)
        return np.asarray(self._row_to_shard, dtype=np.int64)[rows]

    def request(
        self,
        shard: int,
        workload: KNNWorkload,
        *,
        method: str = "warm",
        seed: int = 0,
        degrade: bool = True,
        epoch: int | None = None,
    ) -> ClusterResponse:
        """Route one per-shard request through the failure-aware path.

        ``epoch`` pins the dispatch to a routing epoch the caller
        captured earlier; a topology change in between surfaces as a
        typed :class:`~repro.errors.StaleRoutingEpochError` (refresh
        and retry).  Served queries feed the drift detector.
        """
        response = self.router.dispatch(
            shard, workload, method=method, seed=seed, degrade=degrade,
            epoch=epoch,
        )
        self.topology.drift.observe(shard, workload.queries)
        return response

    def predict(
        self,
        workload: KNNWorkload,
        *,
        method: str = "warm",
        seed: int = 0,
        degrade: bool = True,
    ) -> ClusterPrediction:
        """Predict a whole workload: split by shard, route, merge.

        Per-shard sub-requests are dispatched in cost order with full
        failover semantics; the merged estimate restores original query
        order.  A shard whose verdict is an error leaves ``NaN`` at its
        positions rather than poisoning the rest.
        """
        merged = np.full(workload.n_queries, np.nan)
        responses: list[ClusterResponse] = []
        for row, idx, sub in self.partition.split(workload):
            shard = self._row_to_shard[row]
            if method != "warm":
                # phased methods read query points by id from the
                # shard's file; warm counting never touches the ids
                sub = self._remap(shard, sub)
            response = self.request(
                shard, sub, method=method, seed=seed, degrade=degrade
            )
            responses.append(response)
            if response.result is not None:
                merged[idx] = response.result.per_query
        return ClusterPrediction(merged, responses)

    def _remap(self, shard: int, workload: KNNWorkload) -> KNNWorkload:
        """Re-anchor a sub-workload's query ids to the shard's slice.

        Workload queries are dataset points, and a point's nearest
        centroid is the same whether it arrives as data or as a query
        -- so every query routed to a shard has its point in that
        shard's slice.  A query id outside the cluster's dataset means
        the caller built the workload elsewhere; full-method requests
        cannot serve it, so that is a typed input error.
        """
        mapping = self._local_ids[shard]
        try:
            local = np.fromiter(
                (mapping[int(g)] for g in workload.query_ids),
                dtype=np.int64, count=workload.n_queries,
            )
        except KeyError as missing:
            raise InputValidationError(
                f"query id {missing.args[0]} is not a point of shard "
                f"{shard}'s data slice; full-method cluster predictions "
                f"need workloads drawn from the cluster's own dataset"
            ) from None
        return KNNWorkload(
            k=workload.k, query_ids=local,
            queries=workload.queries, radii=workload.radii,
        )

    def _closed_form(
        self, shard: int, workload: KNNWorkload
    ) -> PredictionResult:
        """The degraded answer when every owner of a shard is down:
        the uniform closed-form baseline over the shard's own data and
        tuned capacities -- no disk, no replica, cannot fail with them."""
        config = self.shard_configs[shard]
        points = self.shard_points[shard]
        n, dim = points.shape
        topology = Topology(
            n_points=n, c_data=config.c_data, c_dir=config.c_dir
        )
        model = UniformCostModel(n, dim, topology.c_eff_data)
        value = model.predict_knn_accesses(workload.k)
        return PredictionResult(
            per_query=np.full(workload.n_queries, value),
            detail={"baseline": "uniform-closed-form", "shard": shard},
        )

    # ------------------------------------------------------------------
    # Failure lifecycle
    # ------------------------------------------------------------------

    def kill_replica(self, name: str) -> None:
        self._replica(name).kill()

    def restart_replica(self, name: str) -> None:
        """Restart a killed replica and give it a clean routing slate.

        The breaker reset mirrors an operator bringing a node back:
        accumulated failure history belongs to the dead incarnation.
        """
        self._replica(name).restart()
        self.router.reset_breakers(name)

    # Elasticity entry points (delegate to the topology manager) --------

    def add_replica(self, name: str | None = None, **kwargs) -> dict:
        """Scale out: warm a new replica from peers, fence it in."""
        return self.topology.add_replica(name, **kwargs)

    def remove_replica(self, name: str, **kwargs) -> dict:
        """Scale in: fence the replica out, drain, fold its books."""
        return self.topology.remove_replica(name, **kwargs)

    def split_shard(self, shard: int, **kwargs) -> tuple[int, int]:
        """Split one shard in two freshly tuned successors."""
        return self.topology.split_shard(shard, **kwargs)

    def re_tune_shard(self, shard: int, **kwargs) -> int:
        """Replace one shard with a freshly tuned successor."""
        return self.topology.re_tune_shard(shard, **kwargs)

    def merge_shards(self, a: int, b: int, **kwargs) -> int:
        """Merge two shards into one freshly tuned successor."""
        return self.topology.merge_shards(a, b, **kwargs)

    def start_controller(
        self, *, autostart: bool = True, **kwargs
    ) -> TopologyController:
        """Attach the autonomous topology controller (and start it).

        ``autostart=False`` attaches without spawning the background
        thread -- callers then drive :meth:`TopologyController.tick`
        themselves (tests and the chaos storm do, for determinism).
        Keyword arguments go to :class:`TopologyController` --
        ``interval_s``, ``dwell_epochs``, ``cooldown_epochs``, and an
        injectable ``clock``.
        """
        if self.controller is not None and self.controller.running:
            raise InputValidationError(
                "a topology controller is already running; stop it "
                "before attaching a new one"
            )
        self.controller = TopologyController(self, **kwargs)
        if autostart:
            self.controller.start()
        return self.controller

    def stop_controller(self) -> None:
        """Stop the controller's background loop, if one is attached."""
        if self.controller is not None:
            self.controller.stop()

    def _replica(self, name: str) -> Replica:
        try:
            return self.replicas[name]
        except KeyError:
            raise InputValidationError(
                f"unknown replica {name!r}; cluster has "
                f"{sorted(self.replicas)}"
            ) from None

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------

    def anti_entropy(self) -> dict:
        """Verify every owner's artifact copy; heal divergent ones.

        For each shard, every owner's on-disk artifact is fully
        verified (CRCs, version, framing).  A bad copy is healed by
        *adopting the first verified peer's bytes* -- artifacts of the
        same fit are bit-identical, so adoption restores the copy
        without touching the data.  Only when **every** copy of a shard
        is bad does one owner rebuild from data (one fit), and the
        rebuilt bytes then propagate to the other owners by adoption.
        Live tenants' warm models are refreshed from the healed
        artifacts, so serving picks the heal up immediately.

        Returns a report: per shard, which owners verified, which were
        healed from which donor, and whether a data rebuild was needed.
        """
        report: dict[int, dict] = {}
        for shard, owner_names in sorted(self.router.table.owners.items()):
            key = shard_tenant(shard)
            verified: list[str] = []
            corrupt: list[tuple[str, str]] = []
            for name in owner_names:
                replica = self.replicas[name]
                store = replica.service.store
                try:
                    store.verify(key)
                    verified.append(name)
                except ArtifactCorruptError as error:
                    corrupt.append((name, error.reason))
            healed: list[dict] = []
            rebuilt_by: str | None = None
            if corrupt:
                if verified:
                    donor = verified[0]
                else:
                    # every copy is bad: one owner rebuilds from data...
                    donor, reason = corrupt[0]
                    rebuilt = self._rebuild(donor, shard)
                    self.replicas[donor].adopt_model(shard, rebuilt)
                    rebuilt_by = donor
                    healed.append({
                        "replica": donor, "via": "rebuild",
                        "reason": reason,
                    })
                    corrupt = corrupt[1:]
                # ...and everyone else adopts the donor's bytes.
                donor_bytes = (
                    self.replicas[donor].artifact_path(shard).read_bytes()
                )
                for name, reason in corrupt:
                    replica = self.replicas[name]
                    model = replica.service.store.adopt(key, donor_bytes)
                    replica.adopt_model(shard, model)
                    healed.append({
                        "replica": name, "via": f"peer:{donor}",
                        "reason": reason,
                    })
            report[shard] = {
                "verified": verified,
                "healed": healed,
                "rebuilt": rebuilt_by,
            }
        return report

    def _rebuild(self, name: str, shard: int):
        """One rebuild-from-data through the store's keyed lock (the
        corrupt file triggers the store's rebuilt-and-overwrite path)."""
        replica = self.replicas[name]
        reg = replica._registered[shard]
        config: ShardConfig = reg["config"]
        from ..service.artifacts import fit_model

        def fit():
            return fit_model(
                reg["points"],
                c_data=config.c_data, c_dir=config.c_dir,
                memory=replica.service.memory, seed=reg["fit_seed"],
                kernel=replica.service.kernel,
            )

        return replica.service.store.load_or_fit(shard_tenant(shard), fit)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Stop the controller, drain the router, stop every live
        replica.  Idempotent.  The controller goes first: a surgery
        scheduled after the drain would race the shutdown."""
        self.stop_controller()
        self.router.drain()
        for replica in self.replicas.values():
            if not replica.down:
                replica.service.stop()

    def __enter__(self) -> "PredictionCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def charged_ops(self, shard: int) -> int:
        """All replicas' lifetime charged ops for one shard -- live
        *and* retired replicas, so scale-in never loses a charge."""
        return sum(
            replica.charged_ops(shard)
            for replica in self.replicas.values()
        ) + sum(
            replica.charged_ops(shard)
            for replica in self.retired_replicas.values()
        )

    def metrics(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "replication": self.replication,
            "router": self.router.metrics(),
            "probe": self.router.probe(),
            "table": self.router.table.as_dict(),
            "shards": {
                shard: config.as_dict()
                for shard, config in self.shard_configs.items()
            },
            "replicas": {
                name: replica.metrics()
                for name, replica in self.replicas.items()
            },
            "retired_replicas": {
                name: replica.metrics()
                for name, replica in self.retired_replicas.items()
            },
            "retired_shards": {
                shard: dict(info)
                for shard, info in self.retired_shards.items()
            },
            "topology": self.topology.report(),
            "controller": (
                self.controller.report()
                if self.controller is not None else None
            ),
        }

    # Convenience the chaos harness and tests use -----------------------

    def make_workload(
        self, n_queries: int, k: int, seed: int = 0
    ) -> KNNWorkload:
        """A density-biased workload over the cluster's full dataset."""
        from ..workload.queries import density_biased_knn_workload
        rng = np.random.default_rng(seed)
        return density_biased_knn_workload(self.data, n_queries, k, rng)

    def corrupt_artifact(self, name: str, shard: int) -> None:
        """Flip a byte in one replica's copy of one shard's artifact
        (chaos injection; the anti-entropy pass must catch and heal it)."""
        path = self._replica(name).artifact_path(shard)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

    def wait_idle(self, timeout_s: float = 30.0) -> None:
        """Block until no leg is outstanding (reconciliation barrier)."""
        self.router.drain(timeout_s=timeout_s)

    def uptime(self) -> dict:
        return {
            name: (replica.service.metrics()["uptime_s"]
                   if not replica.down else 0.0)
            for name, replica in self.replicas.items()
        }
