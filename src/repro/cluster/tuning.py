"""Per-shard index configuration via the page-size tuning application.

The whole point of similarity sharding is that shards face different
cost profiles, so each shard gets its *own* index configuration: the
existing page-size sweep (:func:`repro.apps.pagesize.sweep_page_sizes`)
runs as a library call on the shard's data slice against the shard's
workload slice, with the sampling predictor as the cost oracle, and the
predicted optimum becomes that shard's :class:`ShardConfig` -- the
tuned :class:`~repro.disk.accounting.DiskParameters` plus the page
capacities the geometry dictates at the winning page size.

Every replica that owns a shard uses the *identical* tuned
configuration and fit seed, which is what makes warm-start artifacts
bit-identical across the shard's owners (replica heterogeneity is
modeled at the routing layer as a latency factor, never as divergent
index geometry -- divergent geometry would make failover answers
unverifiable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.pagesize import sweep_page_sizes
from ..disk.accounting import DiskParameters
from ..errors import PredictionError
from ..runtime.budget import Budget
from ..workload.queries import KNNWorkload

__all__ = ["DEFAULT_TUNING_PAGE_SIZES", "ShardConfig", "tune_shard"]

#: candidate page sizes for per-shard tuning; a narrower set than the
#: full application sweep because tuning runs once per shard at cluster
#: construction and only has to separate the regimes
DEFAULT_TUNING_PAGE_SIZES = (8192, 16384, 32768, 65536)


@dataclass(frozen=True)
class ShardConfig:
    """One shard's tuned index configuration -- the routing cost oracle.

    ``predicted_seconds`` is the sweep's predicted per-query cost at the
    winning page size; the router multiplies it by each owner's latency
    factor to order candidates.  ``disk`` carries the tuned page size
    with the transfer time rescaled to it.

    ``tuning_io_ops`` is what producing this configuration *cost*: the
    charged operations summed over every candidate the sweep priced.
    Elastic reorganization (shard splits, drift re-tunes) uses it both
    as the admission estimate against the reorg budget and as the
    actual charge attributed after re-tuning -- reorganization I/O is
    accounted like any other I/O, not hand-waved.
    """

    shard: int
    page_bytes: int
    c_data: int
    c_dir: int
    predicted_accesses: float
    predicted_seconds: float
    n_tuning_queries: int
    disk: DiskParameters
    tuning_io_ops: int = 0

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "page_bytes": self.page_bytes,
            "c_data": self.c_data,
            "c_dir": self.c_dir,
            "predicted_accesses": round(self.predicted_accesses, 3),
            "predicted_seconds": round(self.predicted_seconds, 6),
            "n_tuning_queries": self.n_tuning_queries,
            "tuning_io_ops": self.tuning_io_ops,
        }


def tune_shard(
    shard: int,
    data: np.ndarray,
    workload: KNNWorkload,
    *,
    memory: int = 2_000,
    page_sizes: tuple[int, ...] = DEFAULT_TUNING_PAGE_SIZES,
    base_disk: DiskParameters | None = None,
    method: str = "cutoff",
    seed: int = 0,
    kernel: str | None = None,
) -> ShardConfig:
    """Tune one shard's page size on its own data and workload slice.

    ``method`` defaults to ``"cutoff"`` rather than the sweep's
    ``"resampled"`` default: tuning runs once per shard per cluster
    construction, and the cheaper method ranks the candidates the same
    way at a fraction of the cost.  Raises
    :class:`~repro.errors.PredictionError` when no candidate completes
    (the sweep found no usable optimum).
    """
    sweep = sweep_page_sizes(
        data, workload,
        memory=memory, page_sizes=page_sizes,
        base_disk=base_disk, method=method, seed=seed, kernel=kernel,
    )
    optimum = sweep.predicted_optimum
    if optimum is None:
        raise PredictionError(
            f"page-size tuning for shard {shard} produced no usable "
            f"optimum across {len(page_sizes)} candidates"
        )
    base = base_disk or DiskParameters()
    charged = sum(
        Budget.io_ops(point.io_cost)
        for point in sweep.points
        if point.io_cost is not None
    )
    return ShardConfig(
        shard=shard,
        page_bytes=optimum.page_bytes,
        c_data=optimum.c_data,
        c_dir=optimum.c_dir,
        predicted_accesses=optimum.predicted_accesses,
        predicted_seconds=optimum.predicted_seconds,
        n_tuning_queries=workload.n_queries,
        disk=base.with_page_bytes(optimum.page_bytes),
        tuning_io_ops=int(charged),
    )
