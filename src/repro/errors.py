"""Structured exception hierarchy and input validation.

The paper's value proposition is predicting index cost *cheaply and
reliably*; a production deployment of the predictor therefore needs a
vocabulary for the ways a prediction can fail.  Everything raised on
purpose by this package derives from :class:`ReproError`:

``ReproError``
    root of the hierarchy; callers that want "anything this library
    considers a handled failure" catch this.
``InputValidationError``
    hostile or malformed caller input (NaN/inf coordinates, empty or
    ragged point arrays).  Also subclasses :class:`ValueError` so code
    written against the pre-hierarchy API keeps working.
``DiskError``
    the simulated device failed an operation.  Subclasses
    :class:`TransientReadError` (a read attempt returned garbage;
    retryable), :class:`TornWriteError` (a multi-page write only
    partially landed; retryable by rewriting the full range), and
    :class:`ChecksumError` (a page's payload failed CRC verification --
    silent corruption caught on the wire; retryable by re-reading), and
    :class:`UnrecoverableCorruptionError` (a page rotted *at rest* and
    every replica and parity copy is bad too; not retryable -- rereads
    fetch the same rotten bits -- so the facade degrades with
    ``cause=media``).
``CrashPoint``
    the simulated process was killed at a scheduled charged disk
    operation.  Deliberately *not* a :class:`DiskError`: nothing inside
    the library retries or degrades around a dead process -- the
    exception propagates to whatever harness scheduled the crash, which
    may then run recovery and resume.
``PredictionError``
    a prediction method could not produce an estimate (budget
    infeasible, or disk faults exhausted every retry and every
    fallback method).
``UnknownKernelError``
    a counting-kernel name did not resolve against the kernel registry
    (``repro.kernels``).  Also a :class:`ValueError` so that passing a
    bad ``kernel=`` argument behaves like any other invalid parameter;
    the CLI maps it to exit code 14.
``BudgetExceededError`` / ``DeadlineExceededError``
    a :class:`~repro.runtime.Budget` resource (charged I/O operations,
    sample bytes) or its wall-clock deadline ran out mid-prediction.
    Raised by the :class:`~repro.runtime.Governor` at phase/chunk/leaf
    boundaries; the facade treats them as a *downgrade signal* -- the
    prediction continues along the cheaper fallback chain -- unless the
    caller asked for strict propagation (``degrade=False``).
``CircuitOpenError``
    a :class:`~repro.runtime.CircuitBreaker` guarding a
    :class:`~repro.disk.pagefile.PointFile` is open: recent charged
    operations failed at a rate above its threshold, so further disk
    access is refused *before* any I/O or retries are spent.  A
    :class:`DiskError` (the device is effectively unavailable), but not
    retryable -- the breaker itself decides when to probe again.
``TenantQuotaExceededError`` / ``ServiceOverloadedError``
    the multi-tenant prediction service refused a request up front:
    either *this tenant* ran out of its own quota (in-flight slots or
    charged-op allowance -- the neighbours are unaffected), or the
    *shared* request queue is full and the service sheds load rather
    than queueing unboundedly.  Both are admission verdicts, raised
    before any I/O is spent; the CLI maps them to exit codes 15 and 16.
``ArtifactCorruptError``
    a saved model artifact failed verification on load: a section's
    CRC32 disagrees with the stored payload, the header is malformed,
    or the format version is one this build does not speak.  The
    artifact is *never* trusted partially -- the loader raises before
    returning any model, and the service rebuilds the model from data
    instead.  The CLI maps it to exit code 17.
``ReplicaUnavailableError``
    the sharded prediction cluster could not place a request: every
    replica owning the target shard was down, breaker-open, or
    refusing, and the caller asked for strict routing
    (``degrade=False``).  With degradation enabled the router answers
    from the closed-form baseline instead and annotates the response.
    The CLI maps it to exit code 18.
``StaleRoutingEpochError``
    a dispatch pinned a routing epoch the cluster has already moved
    past (a topology change -- scale-out, scale-in, shard split or
    re-tune -- published a newer table).  The fence refuses the request
    instead of routing it against a ghost topology; the caller re-reads
    the table and retries on the fresh epoch.  The CLI maps it to exit
    code 19.

:class:`DegradedResultWarning` is a :class:`UserWarning`, not an error:
the facade emits it when it had to fall back to a cheaper method and
the returned estimate is annotated rather than failed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ReproError",
    "InputValidationError",
    "DiskError",
    "TransientReadError",
    "TornWriteError",
    "ChecksumError",
    "UnrecoverableCorruptionError",
    "CrashPoint",
    "PredictionError",
    "UnknownKernelError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "TenantQuotaExceededError",
    "ServiceOverloadedError",
    "ArtifactCorruptError",
    "ReplicaUnavailableError",
    "StaleRoutingEpochError",
    "DegradedResultWarning",
    "validate_points",
    "EXIT_CODES",
    "exit_code_for",
]


class ReproError(Exception):
    """Root of every intentional failure raised by this package."""


class InputValidationError(ReproError, ValueError):
    """Caller input rejected before it can corrupt a computation."""


class DiskError(ReproError):
    """The simulated disk failed an operation."""

    #: whether re-issuing the same operation can succeed
    retryable = False


class TransientReadError(DiskError):
    """A page read returned garbage; re-reading the run may succeed."""

    retryable = True

    def __init__(self, start_page: int, n_pages: int, *, attempts: int = 1):
        self.start_page = start_page
        self.n_pages = n_pages
        self.attempts = attempts
        super().__init__(start_page, n_pages)

    def __str__(self) -> str:
        # composed on demand so a retry policy bumping ``attempts``
        # after exhaustion is reflected in the rendered message
        return (
            f"transient read fault on pages "
            f"[{self.start_page}, {self.start_page + self.n_pages}) after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''}"
        )


class TornWriteError(DiskError):
    """A multi-page write only partially landed; rewrite the range."""

    retryable = True

    def __init__(self, start_page: int, n_pages: int, pages_written: int):
        self.start_page = start_page
        self.n_pages = n_pages
        self.pages_written = pages_written
        super().__init__(start_page, n_pages, pages_written)

    def __str__(self) -> str:
        return (
            f"torn write on pages "
            f"[{self.start_page}, {self.start_page + self.n_pages}): "
            f"only {self.pages_written} of {self.n_pages} pages landed"
        )


class ChecksumError(DiskError):
    """A page's payload did not match its stored CRC32 checksum.

    Raised by a checksum-verifying :class:`~repro.disk.pagefile.PointFile`
    when a charged read returns bits that disagree with the page-header
    sidecar.  The corruption model is transient (a flip on the wire, not
    rot on the platter), so re-reading the run may return clean data:
    the error is retryable and flows through the same
    :class:`~repro.disk.retry.RetryPolicy` as transient read faults.
    """

    retryable = True

    def __init__(
        self, page: int, expected: int, actual: int, *, attempts: int = 1
    ):
        self.page = page
        self.expected = expected
        self.actual = actual
        self.attempts = attempts
        super().__init__(page, expected, actual)

    def __str__(self) -> str:
        return (
            f"checksum mismatch on page {self.page}: stored crc32 "
            f"{self.expected:#010x}, payload reads {self.actual:#010x} "
            f"after {self.attempts} attempt"
            f"{'s' if self.attempts != 1 else ''}"
        )


class UnrecoverableCorruptionError(DiskError):
    """A page rotted on the platter and no copy could reconstruct it.

    Raised by a checksum-verifying
    :class:`~repro.disk.pagefile.PointFile` when a charged read hits
    *at-rest* corruption (the fault injector's
    ``at_rest_corruption_rate``) and repair-on-read found every
    mirrored replica and parity reconstruction corrupted as well --
    or no redundancy was configured at all.  Deliberately **not** a
    subclass of :class:`ChecksumError` and **not** retryable:
    re-reading rotten media returns the same rotten bits, so the retry
    policy must not burn its backoff schedule here.  The facade treats
    it as a degradation trigger with ``cause="media"``; the CLI maps
    it to exit code 13.
    """

    retryable = False

    def __init__(self, page: int, *, copies_tried: int = 1):
        self.page = page
        self.copies_tried = copies_tried
        super().__init__(page, copies_tried)

    def __str__(self) -> str:
        return (
            f"unrecoverable at-rest corruption on page {self.page}: "
            f"all {self.copies_tried} "
            f"cop{'ies' if self.copies_tried != 1 else 'y'} failed "
            f"verification"
        )


class CrashPoint(ReproError):
    """The simulated process died at a scheduled charged disk operation.

    Raised by a :class:`~repro.disk.faults.FaultInjector` armed with
    ``crash_at=N`` when the N-th charged operation is about to be
    issued; the operation never lands.  Once raised, the injector stays
    dead -- every further charged access raises again -- until
    ``reboot()`` is called.  Not retryable and never absorbed by the
    degradation chain: a crash is an exit, not an error to paper over.
    """

    def __init__(self, op_index: int):
        self.op_index = op_index
        super().__init__(op_index)

    def __str__(self) -> str:
        return f"simulated crash at charged disk operation {self.op_index}"


class PredictionError(ReproError):
    """No prediction method could produce an estimate."""


class UnknownKernelError(ReproError, ValueError):
    """A counting-kernel name did not resolve against the registry.

    ``kernel`` is the rejected name, ``available`` the names that would
    have resolved, and ``reason`` (when set) explains why a *known*
    backend is unavailable in this environment -- e.g. the ``numba``
    kernel on a machine without numba installed.  Raised eagerly by
    :func:`repro.kernels.get_kernel` and by the facade's constructor so
    a typo fails before any I/O is spent; the CLI maps it to exit
    code 14.
    """

    def __init__(self, kernel: str, *, available: tuple = (),
                 reason: str | None = None):
        self.kernel = kernel
        self.available = tuple(available)
        self.reason = reason
        super().__init__(kernel)

    def __str__(self) -> str:
        options = ", ".join(self.available) if self.available else "none"
        message = (f"unknown counting kernel {self.kernel!r}; "
                   f"registered kernels: {options}")
        if self.reason:
            message += (f" ({self.kernel!r} is a known backend but is "
                        f"unavailable here: {self.reason})")
        return message


class BudgetExceededError(ReproError):
    """A governed resource budget ran out at a prediction boundary.

    ``resource`` names what was exhausted (``"io_ops"`` or
    ``"sample_bytes"``), ``spent`` and ``limit`` quantify it, and
    ``phase`` is the prediction phase whose boundary check tripped.
    Inside the facade this is a downgrade signal: the prediction
    continues with a cheaper method and the returned estimate carries
    the full spend report.  It only escapes to the caller under
    ``degrade=False`` (the CLI's ``--strict-budget``), exit code 11.
    """

    def __init__(self, resource: str, spent: float, limit: float,
                 *, phase: str = "?"):
        self.resource = resource
        self.spent = spent
        self.limit = limit
        self.phase = phase
        super().__init__(resource, spent, limit, phase)

    def __str__(self) -> str:
        return (
            f"{self.resource} budget exhausted at phase {self.phase!r}: "
            f"spent {self.spent:g} of {self.limit:g}"
        )


class DeadlineExceededError(BudgetExceededError):
    """The wall-clock deadline of a governed prediction passed.

    A :class:`BudgetExceededError` whose resource is time, measured on
    the *monotonic* clock (wall-clock adjustments must never fire or
    mask a deadline).  Distinct class -- and distinct CLI exit code 12
    -- because callers often want to treat "too slow" differently from
    "too expensive".
    """

    def __init__(self, elapsed: float, limit: float, *, phase: str = "?"):
        super().__init__("deadline", elapsed, limit, phase=phase)
        self.elapsed = elapsed

    def __str__(self) -> str:
        return (
            f"deadline exceeded at phase {self.phase!r}: "
            f"{self.elapsed:.3f} s elapsed of {self.limit:g} s allowed"
        )


class CircuitOpenError(DiskError):
    """A circuit breaker refused the operation before it was issued.

    Raised by :meth:`~repro.disk.pagefile.PointFile.charged` when the
    attached :class:`~repro.runtime.CircuitBreaker` is open.  Nothing
    was charged and nothing touched the disk; the retry policy never
    runs (fail-fast is the breaker's whole point).  Not retryable --
    the breaker transitions to half-open on its own cooldown schedule.
    """

    retryable = False

    def __init__(self, failure_rate: float, window: int,
                 *, cooldown_remaining: float = 0.0):
        self.failure_rate = failure_rate
        self.window = window
        self.cooldown_remaining = cooldown_remaining
        super().__init__(failure_rate, window)

    def __str__(self) -> str:
        return (
            f"circuit breaker open: {self.failure_rate:.0%} of the last "
            f"{self.window} charged operations failed; next probe in "
            f"{self.cooldown_remaining:.3f} s"
        )


class TenantQuotaExceededError(ReproError):
    """A tenant's own quota refused the request at admission.

    Raised by the multi-tenant prediction service when *this tenant*
    has no in-flight slot left (``resource="inflight"``) or its charged
    I/O-op allowance is spent (``resource="io_ops"``).  Per-tenant by
    construction: one tenant exhausting its quota never affects what
    the service admits from anyone else.  Nothing was queued and no
    I/O was spent; the CLI maps it to exit code 15.
    """

    def __init__(self, tenant: str, resource: str, used: float, limit: float):
        self.tenant = tenant
        self.resource = resource
        self.used = used
        self.limit = limit
        super().__init__(tenant, resource, used, limit)

    def __str__(self) -> str:
        return (
            f"tenant {self.tenant!r} exceeded its {self.resource} quota: "
            f"{self.used:g} of {self.limit:g}"
        )


class ServiceOverloadedError(ReproError):
    """The shared request queue is full: load shed, not queued.

    Raised by the multi-tenant prediction service when the bounded
    request queue has no free slot.  Backpressure is deliberate -- an
    unbounded queue converts overload into unbounded latency and
    eventual memory exhaustion, both of which look like hangs to every
    tenant.  The caller should back off and retry; the CLI maps it to
    exit code 16.
    """

    def __init__(self, queued: int, capacity: int):
        self.queued = queued
        self.capacity = capacity
        super().__init__(queued, capacity)

    def __str__(self) -> str:
        return (
            f"service overloaded: request queue full "
            f"({self.queued} of {self.capacity} slots taken)"
        )


class ArtifactCorruptError(ReproError):
    """A saved model artifact failed verification and was not trusted.

    ``reason`` says what failed: ``"magic"`` (not an artifact file),
    ``"version"`` (format version skew -- written by an incompatible
    build), ``"header"`` (malformed or truncated metadata), or
    ``"checksum"`` (a section's payload disagrees with its stored
    CRC32; ``section`` names it).  Loading stops at the first failed
    check and returns nothing: a warm-start consumer rebuilds the model
    from data instead of predicting from corrupt geometry.  The CLI
    maps it to exit code 17.
    """

    def __init__(self, path: str, reason: str, *, section: str | None = None,
                 detail: str | None = None):
        self.path = str(path)
        self.reason = reason
        self.section = section
        self.detail = detail
        super().__init__(self.path, reason)

    def __str__(self) -> str:
        message = f"model artifact {self.path} failed {self.reason} check"
        if self.section:
            message += f" in section {self.section!r}"
        if self.detail:
            message += f": {self.detail}"
        return message


class ReplicaUnavailableError(ReproError):
    """Every replica owning a shard refused or was unreachable.

    Raised (or embedded in a typed error response) by the cluster
    router when a request's shard has no healthy owner left: each
    candidate was dead, breaker-open, quota-refusing, or answered with
    a typed error, and hedged dispatch found no late winner either.
    ``tried`` records each ``(replica, reason)`` pair in the order the
    router gave up on it -- the causal record of the failed failover.
    Nothing was served and no partial answer is returned; with
    degradation enabled the router falls back to the shard's
    closed-form baseline instead of raising.  The CLI maps it to exit
    code 18.
    """

    def __init__(self, shard: int, tried: tuple = ()):
        self.shard = shard
        self.tried = tuple(tried)
        super().__init__(shard, self.tried)

    def __str__(self) -> str:
        attempts = (
            "; ".join(f"{name}: {reason}" for name, reason in self.tried)
            or "no candidate replicas"
        )
        return (
            f"no replica available for shard {self.shard}: {attempts}"
        )


class StaleRoutingEpochError(ReproError):
    """A dispatch pinned a routing epoch the table has moved past.

    Topology changes (scale-out/in, shard splits, drift re-tunes)
    publish a new routing table under a monotonically increasing
    epoch.  A caller that read the table before the change may pin the
    old epoch on its dispatch; the fence rejects the request with this
    typed error instead of silently dispatching against a ghost
    topology.  Recovery is trivial and local: re-read the table
    (``current`` carries the live epoch) and retry -- the in-flight
    requests admitted under the old epoch still drain to completion,
    so nothing already submitted is lost.  The CLI maps it to exit
    code 19.
    """

    def __init__(self, shard: int, presented: int, current: int):
        self.shard = shard
        self.presented = presented
        self.current = current
        super().__init__(shard, presented, current)

    def __str__(self) -> str:
        return (
            f"routing epoch {self.presented} is stale for shard "
            f"{self.shard}: the table is at epoch {self.current}; "
            f"refresh the routing table and retry"
        )


class DegradedResultWarning(UserWarning):
    """The estimate came from a fallback method, not the one requested."""


def validate_points(points, *, name: str = "points") -> np.ndarray:
    """A validated ``(n, d)`` float64 matrix, or :class:`InputValidationError`.

    Rejects ragged nested sequences, empty arrays (no points or zero
    dimensions), wrong ranks, and non-finite coordinates -- the inputs
    that otherwise surface as cryptic numpy failures deep inside a
    bulk load or a distance kernel.
    """
    try:
        array = np.asarray(points, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise InputValidationError(
            f"{name} is not a rectangular numeric array: {error}"
        ) from error
    if array.ndim != 2:
        raise InputValidationError(
            f"{name} must be an (n, d) matrix, got shape {array.shape}"
        )
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise InputValidationError(
            f"{name} must be non-empty, got shape {array.shape}"
        )
    if not np.isfinite(array).all():
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise InputValidationError(
            f"{name} contains {bad} non-finite coordinate"
            f"{'s' if bad != 1 else ''} (NaN or inf)"
        )
    return array


#: The CLI exit code and ``--help`` description for every error class,
#: most-specific-first: :func:`exit_code_for` walks this table and the
#: first :func:`issubclass` match wins, so a subclass entry must sit
#: above its parent (``DeadlineExceededError`` above
#: ``BudgetExceededError``, every ``DiskError`` leaf above
#: ``DiskError``, everything above the ``ReproError`` catch-all).
#: :class:`CircuitOpenError` deliberately has no row of its own -- an
#: open breaker means the device is effectively unavailable, so it
#: resolves through :class:`DiskError` to code 6.  The test suite
#: asserts every exported :class:`ReproError` subclass resolves to
#: exactly one code, so a new error class cannot ship without deciding
#: its exit code here.
EXIT_CODES: tuple[tuple[type, int, str], ...] = (
    (UnknownKernelError, 14,
     "unknown counting kernel (--kernel / REPRO_KERNEL did not match "
     "a registered backend)"),
    (InputValidationError, 3,
     "invalid input (NaN/inf, empty matrix, bad rates)"),
    (TransientReadError, 4, "transient read fault, retries exhausted"),
    (TornWriteError, 5, "torn multi-page write, retries exhausted"),
    (ChecksumError, 9, "checksum mismatch (silent corruption caught)"),
    (UnrecoverableCorruptionError, 13,
     "unrecoverable at-rest corruption: every copy of a page failed "
     "verification (raise --replication-factor or enable --parity)"),
    (DeadlineExceededError, 12,
     "deadline exceeded (--deadline-s, --strict-budget)"),
    (BudgetExceededError, 11,
     "resource budget exhausted (--max-io-ops, --strict-budget)"),
    (DiskError, 6,
     "other disk error (includes an open circuit breaker)"),
    (PredictionError, 7, "every prediction method failed"),
    (CrashPoint, 10,
     "simulated crash point hit (resume via checkpoint APIs)"),
    (TenantQuotaExceededError, 15,
     "tenant quota exceeded: the tenant's own in-flight slots or "
     "charged-op allowance refused the request at admission"),
    (ServiceOverloadedError, 16,
     "service overloaded: the shared bounded request queue is full "
     "and load was shed instead of queued unboundedly"),
    (ArtifactCorruptError, 17,
     "model artifact corrupt: a saved warm-start artifact failed its "
     "CRC/version verification and was not trusted"),
    (ReplicaUnavailableError, 18,
     "replica unavailable: every replica owning a shard was dead, "
     "breaker-open, or erroring, and closed-form degradation was not "
     "taken"),
    (StaleRoutingEpochError, 19,
     "stale routing epoch: the dispatch pinned a routing epoch an "
     "elastic topology change has fenced off; refresh the routing "
     "table and retry"),
    (ReproError, 8, "other repro error"),
)


def exit_code_for(error) -> int:
    """The process exit code for an error instance or class.

    Walks :data:`EXIT_CODES` most-specific-first; the first matching
    entry wins.  Anything outside the hierarchy falls back to the
    :class:`ReproError` catch-all code.
    """
    klass = error if isinstance(error, type) else type(error)
    for registered, code, _description in EXIT_CODES:
        if issubclass(klass, registered):
            return code
    return 8
