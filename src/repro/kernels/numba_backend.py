"""Optional numba-compiled counting kernel.

Auto-detected: when the ``numba`` package is importable the backend
registers itself as ``numba``; otherwise it registers as *unavailable*
with a reason, so ``get_kernel("numba")`` fails with a typed error that
says why instead of an ImportError from deep inside a predictor.  The
container image does not ship numba -- CI exercises this backend in a
non-blocking job -- so the import gate is the normal path here.

The compiled loops follow the same numeric contract as every other
backend (see :mod:`~repro.kernels.reference`): per-dimension gaps
``max(lower - q, 0) + max(q - upper, 0)``, squared and accumulated
sequentially j = 0 .. d-1 in float64, with early exit once the partial
sum exceeds the squared radius -- exact by monotonicity of non-negative
float accumulation.
"""

from __future__ import annotations

import numpy as np

from .batch import as_radii_grid
from .geometry import LeafGeometry
from .registry import register_kernel, register_unavailable

__all__ = ["NUMBA_AVAILABLE", "NumbaKernel"]

try:
    import numba
except ImportError:  # pragma: no cover - exercised only without numba
    numba = None

#: whether the compiled backend registered in this process
NUMBA_AVAILABLE = numba is not None


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba

    @numba.njit(cache=True, parallel=True)
    def _knn_counts(lower, upper, queries, radii_sq):
        n_queries = queries.shape[0]
        n_leaves = lower.shape[0]
        n_dims = lower.shape[1]
        counts = np.zeros(n_queries, dtype=np.int64)
        for i in numba.prange(n_queries):
            limit = radii_sq[i]
            hits = 0
            for leaf in range(n_leaves):
                dist_sq = 0.0
                alive = True
                for j in range(n_dims):
                    below = lower[leaf, j] - queries[i, j]
                    above = queries[i, j] - upper[leaf, j]
                    gap = 0.0
                    if below > 0.0:
                        gap = below
                    if above > 0.0:
                        gap = gap + above
                    dist_sq += gap * gap
                    if dist_sq > limit:
                        alive = False
                        break
                if alive:
                    hits += 1
            counts[i] = hits
        return counts

    @numba.njit(cache=True, parallel=True)
    def _grid_counts(lower, upper, centers, grid_sq):
        n_rows = grid_sq.shape[0]
        n_queries = centers.shape[0]
        n_leaves = lower.shape[0]
        n_dims = lower.shape[1]
        counts = np.zeros((n_rows, n_queries), dtype=np.int64)
        for i in numba.prange(n_queries):
            # envelope: this center's largest squared radius over rows
            limit = grid_sq[0, i]
            for r in range(1, n_rows):
                if grid_sq[r, i] > limit:
                    limit = grid_sq[r, i]
            for leaf in range(n_leaves):
                dist_sq = 0.0
                alive = True
                for j in range(n_dims):
                    below = lower[leaf, j] - centers[i, j]
                    above = centers[i, j] - upper[leaf, j]
                    gap = 0.0
                    if below > 0.0:
                        gap = below
                    if above > 0.0:
                        gap = gap + above
                    dist_sq += gap * gap
                    if dist_sq > limit:
                        alive = False
                        break
                if alive:
                    for r in range(n_rows):
                        if dist_sq <= grid_sq[r, i]:
                            counts[r, i] += 1
        return counts

    @numba.njit(cache=True, parallel=True)
    def _range_counts(lower, upper, q_lower, q_upper):
        n_queries = q_lower.shape[0]
        n_leaves = lower.shape[0]
        n_dims = lower.shape[1]
        counts = np.zeros(n_queries, dtype=np.int64)
        for i in numba.prange(n_queries):
            hits = 0
            for leaf in range(n_leaves):
                overlap = True
                for j in range(n_dims):
                    if q_lower[i, j] > upper[leaf, j] or lower[leaf, j] > q_upper[i, j]:
                        overlap = False
                        break
                if overlap:
                    hits += 1
            counts[i] = hits
        return counts

    class NumbaKernel:
        """Compiled per-pair loops with exact early exit."""

        name = "numba"

        def count_knn(
            self, geometry: LeafGeometry, queries: np.ndarray, radii: np.ndarray
        ) -> np.ndarray:
            """Leaves whose mindist to ``queries[i]`` is within ``radii[i]``."""
            queries = np.ascontiguousarray(queries, dtype=np.float64)
            radii = np.asarray(radii, dtype=np.float64)
            if geometry.is_empty or queries.shape[0] == 0:
                return np.zeros(queries.shape[0], dtype=np.int64)
            return _knn_counts(
                geometry.lower, geometry.upper, queries, radii * radii
            )

        def count_grid(
            self, geometry: LeafGeometry, centers: np.ndarray,
            radii_grid: np.ndarray,
        ) -> np.ndarray:
            """Fused grid: one compiled pass per center answers all rows.

            Early exit prunes against the per-center envelope (largest
            squared radius over the rows) -- exact for every row by
            monotonicity, so each row stays bit-identical to a
            stand-alone :meth:`count_knn` call.
            """
            centers = np.ascontiguousarray(centers, dtype=np.float64)
            grid = as_radii_grid(centers, radii_grid)
            if geometry.is_empty or centers.shape[0] == 0 or grid.shape[0] == 0:
                return np.zeros(grid.shape, dtype=np.int64)
            return _grid_counts(
                geometry.lower, geometry.upper, centers, grid * grid
            )

        def count_range(
            self, geometry: LeafGeometry, q_lower: np.ndarray, q_upper: np.ndarray
        ) -> np.ndarray:
            """Leaves whose box overlaps the closed query box ``i``."""
            q_lower = np.ascontiguousarray(q_lower, dtype=np.float64)
            q_upper = np.ascontiguousarray(q_upper, dtype=np.float64)
            if geometry.is_empty or q_lower.shape[0] == 0:
                return np.zeros(q_lower.shape[0], dtype=np.int64)
            return _range_counts(geometry.lower, geometry.upper, q_lower, q_upper)

    register_kernel("numba", NumbaKernel)
else:

    class NumbaKernel:  # type: ignore[no-redef]
        """Placeholder when numba is not installed; never instantiated."""

        name = "numba"

    register_unavailable("numba", "the numba package is not installed")
