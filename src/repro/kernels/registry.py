"""The counting-kernel registry.

A *kernel* answers the paper's one hot question -- how many leaf pages
does each query region intersect? -- for a whole workload at once,
against a :class:`~repro.kernels.geometry.LeafGeometry`.  Kernels are
interchangeable by contract: every registered backend must return
**bit-identical** ``per_query`` counts (enforced by the equivalence
property tests), so selecting one is purely a performance decision and
no paper result can change with the selection.

Selection order: an explicit name beats the ``REPRO_KERNEL``
environment variable beats ``numba`` when that backend registered
(i.e. the package is importable) beats the fallback default
(``numpy_batched``).  Unknown names raise the typed
:class:`~repro.errors.UnknownKernelError` -- eagerly, so a typo fails
before any I/O is spent.  Optional backends (numba) register themselves
as *unavailable* with a reason when their dependency is missing, which
the error message surfaces.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..errors import UnknownKernelError
from .geometry import LeafGeometry

__all__ = [
    "CountingKernel",
    "DEFAULT_KERNEL",
    "KERNEL_ENV_VAR",
    "PREFERRED_KERNEL",
    "available_kernels",
    "default_kernel_name",
    "get_kernel",
    "register_kernel",
    "register_unavailable",
]

#: the fallback kernel when nothing else chooses and numba is absent
DEFAULT_KERNEL = "numpy_batched"

#: the backend promoted to default whenever it managed to register
PREFERRED_KERNEL = "numba"

#: environment variable consulted when no explicit name is given (this
#: is what the CI kernel matrix sets to run the whole suite per backend)
KERNEL_ENV_VAR = "REPRO_KERNEL"


@runtime_checkable
class CountingKernel(Protocol):
    """What a counting backend must provide.

    Both methods return an ``(q,)`` int64 array of per-query
    intersection counts and must be bit-identical across kernels for
    the same inputs -- the equivalence tests hold every registered
    backend to the ``reference`` oracle.
    """

    name: str

    def count_knn(
        self, geometry: LeafGeometry, queries: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """Leaves intersecting each query sphere ``B(queries[i], radii[i])``."""
        ...

    def count_range(
        self, geometry: LeafGeometry, q_lower: np.ndarray, q_upper: np.ndarray
    ) -> np.ndarray:
        """Leaves intersecting each closed box ``[q_lower[i], q_upper[i]]``."""
        ...

    def count_grid(
        self, geometry: LeafGeometry, centers: np.ndarray,
        radii_grid: np.ndarray,
    ) -> np.ndarray:
        """Fused (queries x radii) grid: one geometry pass, ``(g, q)`` counts.

        ``radii_grid`` is ``(g, q)`` (or ``(g,)``, broadcast to a
        constant radius per row); row ``r`` of the returned int64 array
        must be bit-identical to
        ``count_knn(geometry, centers, radii_grid[r])``.
        """
        ...


_factories: dict[str, Callable[[], CountingKernel]] = {}
_unavailable: dict[str, str] = {}
_instances: dict[str, CountingKernel] = {}
_lock = threading.Lock()


def register_kernel(name: str, factory: Callable[[], CountingKernel]) -> None:
    """Register a kernel backend under ``name`` (idempotent by name)."""
    with _lock:
        _factories[name] = factory
        _unavailable.pop(name, None)
        _instances.pop(name, None)


def register_unavailable(name: str, reason: str) -> None:
    """Record a known backend that cannot run in this environment."""
    with _lock:
        if name not in _factories:
            _unavailable[name] = reason


def available_kernels() -> tuple[str, ...]:
    """Names that :func:`get_kernel` will resolve, sorted."""
    with _lock:
        return tuple(sorted(_factories))


def default_kernel_name() -> str:
    """The name an unqualified :func:`get_kernel` call resolves to.

    ``REPRO_KERNEL`` wins when set; otherwise the compiled ``numba``
    backend whenever it registered in this process (importable numba),
    falling back to ``numpy_batched``.
    """
    env = os.environ.get(KERNEL_ENV_VAR)
    if env:
        return env
    with _lock:
        if PREFERRED_KERNEL in _factories:
            return PREFERRED_KERNEL
    return DEFAULT_KERNEL


def get_kernel(name: str | None = None) -> CountingKernel:
    """Resolve a kernel by name (argument > ``REPRO_KERNEL`` > default).

    Instances are cached per name: kernels are stateless beyond their
    configuration, so one instance serves every predictor.  Raises
    :class:`~repro.errors.UnknownKernelError` for names that are not
    registered, with the reason attached when the backend is known but
    unavailable (e.g. numba not installed).
    """
    resolved = name if name is not None else default_kernel_name()
    with _lock:
        instance = _instances.get(resolved)
        if instance is not None:
            return instance
        factory = _factories.get(resolved)
        if factory is None:
            raise UnknownKernelError(
                resolved,
                available=tuple(sorted(_factories)),
                reason=_unavailable.get(resolved),
            )
        instance = factory()
        _instances[resolved] = instance
        return instance
