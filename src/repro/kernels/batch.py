"""The fused-dispatch vocabulary: radius grids and batch plans.

The batched execution plane fuses many logical counting requests into
one kernel dispatch.  Two shapes of fusion exist:

* a **radius grid** -- the *same* query centers probed at ``g``
  different radius rows (``count_grid``), the shape the ``apps/``
  sweeps produce when they re-measure one geometry per grid cell; and
* a **concatenated batch** -- several requests' centers stacked into
  one workload (the service coalescer), carved back apart afterwards.

:class:`BatchPlan` is the value object describing the second shape: the
member labels, their query segments inside the fused arrays, and the
exact split of both the fused answer and any charged-op total back to
the members.  It is deliberately dumb -- pure bookkeeping, no kernel
calls -- so the coalescer, the cluster, and the sweeps can all share
it and the attribution arithmetic is testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchPlan", "as_radii_grid"]


def as_radii_grid(centers: np.ndarray, radii_grid: np.ndarray) -> np.ndarray:
    """Normalize a radius grid against ``(q, d)`` centers to ``(g, q)``.

    Accepts a 2-D ``(g, q)`` grid (row ``r`` gives the per-center radii
    of grid row ``r``) or a 1-D ``(g,)`` vector, interpreted as ``g``
    constant-radius rows broadcast across all centers.  Returns a
    float64 ``(g, q)`` array either way.
    """
    centers = np.asarray(centers, dtype=np.float64)
    grid = np.asarray(radii_grid, dtype=np.float64)
    n_queries = centers.shape[0]
    if grid.ndim == 1:
        grid = np.repeat(grid[:, None], n_queries, axis=1) \
            if n_queries else grid.reshape(grid.shape[0], 0)
    if grid.ndim != 2 or grid.shape[1] != n_queries:
        raise ValueError(
            f"radii_grid must be (g,) or (g, n_queries={n_queries}), "
            f"got shape {np.asarray(radii_grid).shape}"
        )
    return np.ascontiguousarray(grid)


@dataclass(frozen=True)
class BatchPlan:
    """One fused dispatch: who is in it and which rows are whose.

    ``segments[m]`` is the half-open ``(start, stop)`` row range of
    member ``m`` inside the fused query arrays; ``members[m]`` is an
    opaque label (tenant name, request id, sweep-cell key) the caller
    uses to route the slice back.  Segments are contiguous and ordered:
    member ``m+1`` starts where ``m`` stops.
    """

    kernel: str
    members: tuple[str, ...]
    segments: tuple[tuple[int, int], ...]
    n_leaves: int = 0

    def __post_init__(self) -> None:
        if len(self.members) != len(self.segments):
            raise ValueError(
                f"{len(self.members)} members but "
                f"{len(self.segments)} segments"
            )
        cursor = 0
        for start, stop in self.segments:
            if start != cursor or stop < start:
                raise ValueError(
                    f"segments must be contiguous and ordered, got "
                    f"{self.segments}"
                )
            cursor = stop

    @classmethod
    def for_members(
        cls,
        members: "list[str] | tuple[str, ...]",
        sizes: "list[int] | tuple[int, ...]",
        *,
        kernel: str,
        n_leaves: int = 0,
    ) -> "BatchPlan":
        """Lay out ``members`` with ``sizes[m]`` queries each, in order."""
        segments = []
        cursor = 0
        for size in sizes:
            segments.append((cursor, cursor + int(size)))
            cursor += int(size)
        return cls(
            kernel=kernel,
            members=tuple(members),
            segments=tuple(segments),
            n_leaves=n_leaves,
        )

    @property
    def n_members(self) -> int:
        return len(self.members)

    @property
    def n_queries(self) -> int:
        return self.segments[-1][1] if self.segments else 0

    def split(self, fused: np.ndarray) -> list[np.ndarray]:
        """Carve a fused per-query result back into per-member copies.

        Copies, not views: members outlive the fused buffer (service
        responses hold their slice after the batch is gone).
        """
        fused = np.asarray(fused)
        if fused.shape[0] != self.n_queries:
            raise ValueError(
                f"fused result has {fused.shape[0]} rows, plan expects "
                f"{self.n_queries}"
            )
        return [fused[start:stop].copy() for start, stop in self.segments]

    def attribute(self, total_ops: int) -> list[int]:
        """Split a fused charged-op total exactly across the members.

        Proportional to member query counts, with the integer remainder
        distributed deterministically in member order (largest
        fractional share first, ties broken by position) so the parts
        always sum to ``total_ops`` -- the ledger reconciliation
        invariant tolerates no rounding drift.
        """
        total_ops = int(total_ops)
        if not self.segments:
            return []
        sizes = [stop - start for start, stop in self.segments]
        n_queries = sum(sizes)
        if n_queries == 0:
            parts = [0] * self.n_members
            parts[0] = total_ops
            return parts
        raw = [total_ops * size / n_queries for size in sizes]
        parts = [int(share) for share in raw]
        remainder = total_ops - sum(parts)
        by_fraction = sorted(
            range(self.n_members),
            key=lambda m: (-(raw[m] - parts[m]), m),
        )
        for m in by_fraction[:remainder]:
            parts[m] += 1
        return parts
