"""The canonical structure-of-arrays leaf-page representation.

Every prediction method in the paper ends the same way: count, per
query, how many leaf pages the query region intersects.  Historically
each predictor restacked ``(lower, upper)`` corner pairs ad hoc from
the node object graph before every counting call.  :class:`LeafGeometry`
is the one value they now all produce and consume: stacked ``(k, d)``
corner matrices plus the per-leaf occupancy (``n_points``) and
full-dataset quota (``virtual_n``) the statistics and phased predictors
need -- flat, C-contiguous, and cached once per tree instead of
re-extracted per call.

The transposed per-dimension columns (``lower_t`` / ``upper_t``) are
materialized lazily and cached on the instance: the batched counting
kernels stream dimension-by-dimension, and a ``(d, k)`` contiguous
layout turns each of their inner passes into a unit-stride read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable

import numpy as np

__all__ = ["LeafGeometry"]


def _corner_matrix(value: np.ndarray, name: str) -> np.ndarray:
    array = np.ascontiguousarray(value, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be a (k, d) matrix, got {array.shape}")
    return array


def _count_vector(value, k: int, name: str) -> np.ndarray:
    if value is None:
        return np.zeros(k, dtype=np.int64)
    array = np.ascontiguousarray(value, dtype=np.int64)
    if array.shape != (k,):
        raise ValueError(f"{name} must have shape ({k},), got {array.shape}")
    return array


@dataclass(frozen=True)
class LeafGeometry:
    """Stacked leaf-page boxes with per-leaf occupancy counts.

    ``lower`` and ``upper`` are ``(k, d)`` float64 corner matrices (row
    ``i`` is leaf ``i``); ``n_points`` holds the points actually stored
    in each leaf and ``virtual_n`` the full-dataset points the leaf's
    subtree *would* hold (zero where unknown -- e.g. for synthesized
    uniform pages).  Instances are immutable values: derived geometries
    (compensation growth, concatenation) are new objects, so a cached
    geometry can be shared freely across predictors and sweep cells.
    """

    lower: np.ndarray = field(repr=False)
    upper: np.ndarray = field(repr=False)
    n_points: np.ndarray = field(repr=False, default=None)
    virtual_n: np.ndarray = field(repr=False, default=None)

    def __post_init__(self) -> None:
        lower = _corner_matrix(self.lower, "lower")
        upper = _corner_matrix(self.upper, "upper")
        if lower.shape != upper.shape:
            raise ValueError(
                f"corner matrices disagree: {lower.shape} vs {upper.shape}"
            )
        k = lower.shape[0]
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(
            self, "n_points", _count_vector(self.n_points, k, "n_points")
        )
        object.__setattr__(
            self, "virtual_n", _count_vector(self.virtual_n, k, "virtual_n")
        )

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls, dim: int) -> "LeafGeometry":
        """The geometry of a tree with no non-empty leaves."""
        return cls(np.empty((0, dim)), np.empty((0, dim)))

    @classmethod
    def from_corners(
        cls,
        lower: np.ndarray,
        upper: np.ndarray,
        *,
        n_points: np.ndarray | None = None,
        virtual_n: np.ndarray | None = None,
    ) -> "LeafGeometry":
        """Wrap already-stacked ``(k, d)`` corner arrays."""
        return cls(lower, upper, n_points, virtual_n)

    @classmethod
    def from_leaves(cls, leaves: Iterable, dim: int) -> "LeafGeometry":
        """Stack the non-empty leaves of a node graph.

        ``leaves`` yields objects with ``mbr`` (``None`` for an empty
        leaf), ``n_points`` and ``virtual_n`` attributes -- the
        :class:`~repro.rtree.node.LeafNode` interface.  Row order is
        iteration order, so a cached geometry enumerates leaves exactly
        as the tree's ``leaves`` list does.
        """
        boxes = [leaf for leaf in leaves if leaf.mbr is not None]
        if not boxes:
            return cls.empty(dim)
        return cls(
            np.stack([leaf.mbr.lower for leaf in boxes]),
            np.stack([leaf.mbr.upper for leaf in boxes]),
            np.array([leaf.n_points for leaf in boxes], dtype=np.int64),
            np.array(
                [getattr(leaf, "virtual_n", 0) for leaf in boxes],
                dtype=np.int64,
            ),
        )

    # -- shape ----------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of leaf pages."""
        return int(self.lower.shape[0])

    def __len__(self) -> int:
        return self.k

    @property
    def dim(self) -> int:
        return int(self.lower.shape[1])

    @property
    def is_empty(self) -> bool:
        return self.lower.shape[0] == 0

    @property
    def corners(self) -> tuple[np.ndarray, np.ndarray]:
        """The legacy ``(lower, upper)`` pair, for array-level callers."""
        return self.lower, self.upper

    # -- kernel-facing layout -------------------------------------------

    @cached_property
    def lower_t(self) -> np.ndarray:
        """``(d, k)`` C-contiguous transpose of ``lower``, cached."""
        return np.ascontiguousarray(self.lower.T)

    @cached_property
    def upper_t(self) -> np.ndarray:
        """``(d, k)`` C-contiguous transpose of ``upper``, cached."""
        return np.ascontiguousarray(self.upper.T)

    # -- derivation -----------------------------------------------------

    def scaled(self, side_factor: float) -> "LeafGeometry":
        """Every box scaled about its own center; counts preserved."""
        if side_factor < 0:
            raise ValueError("side_factor must be non-negative")
        center = (self.lower + self.upper) / 2.0
        half = (self.upper - self.lower) / 2.0 * side_factor
        return LeafGeometry(
            center - half, center + half, self.n_points, self.virtual_n
        )

    def concatenated(self, other: "LeafGeometry") -> "LeafGeometry":
        """The union page set of two geometries of equal dimension."""
        if other.dim != self.dim:
            raise ValueError(
                f"cannot concatenate {self.dim}-d and {other.dim}-d geometry"
            )
        return LeafGeometry(
            np.concatenate([self.lower, other.lower]),
            np.concatenate([self.upper, other.upper]),
            np.concatenate([self.n_points, other.n_points]),
            np.concatenate([self.virtual_n, other.virtual_n]),
        )
