"""Columnar leaf geometry and pluggable batched counting kernels.

Everything the paper predicts reduces to one primitive: count, for each
query region, the leaf pages it intersects.  This package owns that
primitive end to end -- the canonical structure-of-arrays
:class:`LeafGeometry` value that every tree and predictor produces and
caches, and a registry of interchangeable counting backends:

``reference``
    the per-query loop kept as the correctness oracle,
``numpy_batched``
    query-tiled blocked broadcasting with a memory cap and exact early
    pruning (the default),
``numba``
    an optional compiled backend, auto-detected when numba is
    installed and promoted to default when present.

All kernels return bit-identical ``per_query`` counts (the equivalence
property tests enforce it), so the selection -- via
``IndexCostPredictor(kernel=...)``, the CLI ``--kernel`` flag, or the
``REPRO_KERNEL`` environment variable -- is purely a performance knob
and no paper figure depends on it.

Every kernel also exposes the fused ``count_grid`` entry point -- one
geometry pass answering a whole (queries x radii) grid -- and
:class:`BatchPlan` describes a fused multi-request dispatch (member
segments plus the exact charged-op attribution split), the vocabulary
the service coalescer and the ``apps/`` sweeps share.
"""

from .batch import BatchPlan, as_radii_grid
from .geometry import LeafGeometry
from .registry import (
    DEFAULT_KERNEL,
    KERNEL_ENV_VAR,
    PREFERRED_KERNEL,
    CountingKernel,
    available_kernels,
    default_kernel_name,
    get_kernel,
    register_kernel,
    register_unavailable,
)

# Importing the backend modules registers them; reference first so the
# oracle is always present, then the default, then optional backends.
from .reference import ReferenceKernel
from .batched import DEFAULT_MEMORY_CAP_BYTES, MEMORY_CAP_ENV_VAR, NumpyBatchedKernel
from .numba_backend import NUMBA_AVAILABLE, NumbaKernel

__all__ = [
    "DEFAULT_KERNEL",
    "DEFAULT_MEMORY_CAP_BYTES",
    "KERNEL_ENV_VAR",
    "MEMORY_CAP_ENV_VAR",
    "NUMBA_AVAILABLE",
    "PREFERRED_KERNEL",
    "BatchPlan",
    "CountingKernel",
    "LeafGeometry",
    "NumbaKernel",
    "NumpyBatchedKernel",
    "ReferenceKernel",
    "as_radii_grid",
    "available_kernels",
    "default_kernel_name",
    "get_kernel",
    "register_kernel",
    "register_unavailable",
]
