"""The reference counting kernel -- the per-query oracle.

This is the paper's counting loop in its plainest form: for each query,
vectorize over the leaf pages, then reduce.  It exists to be *obviously
correct* and to pin down the numeric contract every faster backend must
match bit-for-bit:

* the per-dimension gap is ``max(lower - q, 0) + max(q - upper, 0)``
  (at most one term is nonzero for a valid box, so the decomposition
  itself is exact),
* squared gaps are accumulated **sequentially over dimensions,
  j = 0 .. d-1**, in float64 -- never through a reduction whose internal
  ordering is unspecified,
* a sphere intersects a box iff that sum is ``<= radius * radius``.

Because float addition of non-negative terms is monotone
(``fl(s + x) >= s``), a partial sum that already exceeds the squared
radius can never fall back under it: batched and compiled backends may
therefore prune pairs early and still decide ``dist <= r**2`` exactly
as this loop does.
"""

from __future__ import annotations

import numpy as np

from .batch import as_radii_grid
from .geometry import LeafGeometry
from .registry import register_kernel

__all__ = ["ReferenceKernel"]


class ReferenceKernel:
    """Per-query loop over the stacked leaf boxes.

    Runs in O(q * k * d) with a (k, d) temporary per query; kept as the
    oracle the equivalence property tests hold every other kernel to.
    """

    name = "reference"

    def count_knn(
        self, geometry: LeafGeometry, queries: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """Leaves whose mindist to ``queries[i]`` is within ``radii[i]``."""
        queries = np.asarray(queries, dtype=np.float64)
        radii = np.asarray(radii, dtype=np.float64)
        counts = np.zeros(queries.shape[0], dtype=np.int64)
        if geometry.is_empty:
            return counts
        lower, upper = geometry.lower, geometry.upper
        for i in range(queries.shape[0]):
            point = queries[i]
            gap = np.maximum(lower - point, 0.0) + np.maximum(point - upper, 0.0)
            gap *= gap
            dist_sq = gap[:, 0].copy()
            for j in range(1, gap.shape[1]):
                dist_sq += gap[:, j]
            counts[i] = np.count_nonzero(dist_sq <= radii[i] * radii[i])
        return counts

    def count_grid(
        self, geometry: LeafGeometry, centers: np.ndarray,
        radii_grid: np.ndarray,
    ) -> np.ndarray:
        """Fused grid: each center's mindist vector tested per grid row.

        One geometry pass per center answers all ``g`` rows -- the
        squared-mindist vector is exactly the one :meth:`count_knn`
        computes (same sequential j = 0 .. d-1 accumulation), so row
        ``r`` is bit-identical to a ``count_knn`` call with
        ``radii_grid[r]``.
        """
        centers = np.asarray(centers, dtype=np.float64)
        grid = as_radii_grid(centers, radii_grid)
        counts = np.zeros(grid.shape, dtype=np.int64)
        if geometry.is_empty or centers.shape[0] == 0 or grid.shape[0] == 0:
            return counts
        lower, upper = geometry.lower, geometry.upper
        for i in range(centers.shape[0]):
            point = centers[i]
            gap = np.maximum(lower - point, 0.0) + np.maximum(point - upper, 0.0)
            gap *= gap
            dist_sq = gap[:, 0].copy()
            for j in range(1, gap.shape[1]):
                dist_sq += gap[:, j]
            for r in range(grid.shape[0]):
                counts[r, i] = np.count_nonzero(
                    dist_sq <= grid[r, i] * grid[r, i]
                )
        return counts

    def count_range(
        self, geometry: LeafGeometry, q_lower: np.ndarray, q_upper: np.ndarray
    ) -> np.ndarray:
        """Leaves whose box overlaps the closed query box ``i``."""
        q_lower = np.asarray(q_lower, dtype=np.float64)
        q_upper = np.asarray(q_upper, dtype=np.float64)
        counts = np.zeros(q_lower.shape[0], dtype=np.int64)
        if geometry.is_empty:
            return counts
        lower, upper = geometry.lower, geometry.upper
        for i in range(q_lower.shape[0]):
            hits = (q_lower[i] <= upper) & (lower <= q_upper[i])
            counts[i] = np.count_nonzero(hits.all(axis=1))
        return counts


register_kernel("reference", ReferenceKernel)
