"""The default batched counting kernel.

Processes the whole workload in query tiles instead of one query at a
time.  Each tile takes one dense pass over dimension 0 against all k
leaf boxes, then compacts to the surviving (query, leaf) pairs and
streams the remaining dimensions as flat unit-stride gathers, pruning
pairs as soon as their partial squared mindist exceeds the squared
radius.  The tile height is chosen so the dense pass never materializes
more than ``memory_cap_bytes`` of temporaries -- 10k queries against
100k leaves runs in bounded memory no matter the workload shape.

Pruning is exact, not approximate: squared gaps are non-negative and
float addition of non-negative terms is monotone (``fl(s + x) >= s``),
so a partial sum that exceeds ``radius * radius`` can never fall back
under it and the pair's final ``dist <= r**2`` test is already decided.
Surviving pairs accumulate their gap terms in the same sequential
j = 0 .. d-1 float64 order as the :mod:`~repro.kernels.reference`
oracle, which is what makes the returned counts bit-identical to it.
"""

from __future__ import annotations

import os

import numpy as np

from .batch import as_radii_grid
from .geometry import LeafGeometry
from .registry import register_kernel

__all__ = ["DEFAULT_MEMORY_CAP_BYTES", "MEMORY_CAP_ENV_VAR", "NumpyBatchedKernel"]

#: default ceiling on per-tile temporary allocations (64 MiB)
DEFAULT_MEMORY_CAP_BYTES = 64 << 20

#: environment override for the cap, in bytes
MEMORY_CAP_ENV_VAR = "REPRO_KERNEL_CAP_BYTES"

# The dim-0 dense pass holds ~6 float64/bool (q_tile, k) temporaries at
# its peak (two maximum() operands, their sum, the square, the alive
# mask, and nonzero's scratch); the tile height is sized against that.
_BUFFERS_PER_PAIR = 6


class NumpyBatchedKernel:
    """Query-tile x leaf blocked counting with exact early pruning."""

    name = "numpy_batched"

    def __init__(self, memory_cap_bytes: int | None = None) -> None:
        if memory_cap_bytes is None:
            env = os.environ.get(MEMORY_CAP_ENV_VAR)
            memory_cap_bytes = int(env) if env else DEFAULT_MEMORY_CAP_BYTES
        if memory_cap_bytes <= 0:
            raise ValueError("memory_cap_bytes must be positive")
        self.memory_cap_bytes = int(memory_cap_bytes)

    def _tile_height(self, n_queries: int, n_leaves: int) -> int:
        if n_leaves == 0:
            return max(n_queries, 1)
        rows = self.memory_cap_bytes // (n_leaves * 8 * _BUFFERS_PER_PAIR)
        return max(1, min(n_queries, int(rows)))

    # -- knn ------------------------------------------------------------

    def count_knn(
        self, geometry: LeafGeometry, queries: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """Leaves whose mindist to ``queries[i]`` is within ``radii[i]``."""
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        radii = np.asarray(radii, dtype=np.float64)
        n_queries = queries.shape[0]
        counts = np.zeros(n_queries, dtype=np.int64)
        if geometry.is_empty or n_queries == 0:
            return counts
        radii_sq = radii * radii
        tile = self._tile_height(n_queries, geometry.k)
        for start in range(0, n_queries, tile):
            stop = min(start + tile, n_queries)
            counts[start:stop] = self._knn_tile(
                geometry, queries[start:stop], radii_sq[start:stop]
            )
        return counts

    @staticmethod
    def _knn_tile(
        geometry: LeafGeometry, queries: np.ndarray, radii_sq: np.ndarray
    ) -> np.ndarray:
        lower_t, upper_t = geometry.lower_t, geometry.upper_t
        n_dims = lower_t.shape[0]
        # Dense pass over dimension 0: partial mindist^2 for every
        # (query, leaf) pair in the tile.
        point = queries[:, 0][:, None]
        gap = np.maximum(lower_t[0][None, :] - point, 0.0)
        gap += np.maximum(point - upper_t[0][None, :], 0.0)
        gap *= gap
        rows, cols = np.nonzero(gap <= radii_sq[:, None])
        dist_sq = gap[rows, cols]
        del gap
        # Stream the remaining dimensions over the surviving pairs only,
        # compacting whenever the partial sum has decided a pair.
        for j in range(1, n_dims):
            point_j = queries[rows, j]
            gap_j = np.maximum(lower_t[j][cols] - point_j, 0.0)
            gap_j += np.maximum(point_j - upper_t[j][cols], 0.0)
            gap_j *= gap_j
            dist_sq += gap_j
            keep = dist_sq <= radii_sq[rows]
            if not keep.all():
                rows = rows[keep]
                cols = cols[keep]
                dist_sq = dist_sq[keep]
        return np.bincount(rows, minlength=queries.shape[0]).astype(np.int64)

    # -- fused grid ------------------------------------------------------

    def count_grid(
        self, geometry: LeafGeometry, centers: np.ndarray,
        radii_grid: np.ndarray,
    ) -> np.ndarray:
        """Fused (queries x radii) grid sharing one geometry pass.

        The tile pass prunes each (query, leaf) pair against the
        *envelope* -- that query's largest squared radius across the
        grid rows -- and keeps the exact squared mindist of the
        survivors.  Each row then re-tests the survivors against its
        own squared radii.  Envelope pruning is exact for every row by
        the same monotonicity argument as :meth:`count_knn`: a pair
        pruned under the envelope already exceeds every row's radius,
        and a surviving pair carries the full sequential j = 0 .. d-1
        sum, so each row's counts are bit-identical to a stand-alone
        ``count_knn`` call with that row's radii.
        """
        centers = np.ascontiguousarray(centers, dtype=np.float64)
        grid = as_radii_grid(centers, radii_grid)
        n_rows, n_queries = grid.shape
        counts = np.zeros((n_rows, n_queries), dtype=np.int64)
        if geometry.is_empty or n_queries == 0 or n_rows == 0:
            return counts
        grid_sq = grid * grid
        envelope_sq = grid_sq.max(axis=0)
        tile = self._tile_height(n_queries, geometry.k)
        for start in range(0, n_queries, tile):
            stop = min(start + tile, n_queries)
            rows, dist_sq = self._grid_tile(
                geometry, centers[start:stop], envelope_sq[start:stop]
            )
            width = stop - start
            for r in range(n_rows):
                hits = dist_sq <= grid_sq[r, start:stop][rows]
                counts[r, start:stop] = np.bincount(
                    rows[hits], minlength=width
                ).astype(np.int64)
        return counts

    @staticmethod
    def _grid_tile(
        geometry: LeafGeometry, queries: np.ndarray, envelope_sq: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Surviving (query-row, exact dist_sq) pairs under the envelope."""
        lower_t, upper_t = geometry.lower_t, geometry.upper_t
        n_dims = lower_t.shape[0]
        point = queries[:, 0][:, None]
        gap = np.maximum(lower_t[0][None, :] - point, 0.0)
        gap += np.maximum(point - upper_t[0][None, :], 0.0)
        gap *= gap
        rows, cols = np.nonzero(gap <= envelope_sq[:, None])
        dist_sq = gap[rows, cols]
        del gap
        for j in range(1, n_dims):
            point_j = queries[rows, j]
            gap_j = np.maximum(lower_t[j][cols] - point_j, 0.0)
            gap_j += np.maximum(point_j - upper_t[j][cols], 0.0)
            gap_j *= gap_j
            dist_sq += gap_j
            keep = dist_sq <= envelope_sq[rows]
            if not keep.all():
                rows = rows[keep]
                cols = cols[keep]
                dist_sq = dist_sq[keep]
        return rows, dist_sq

    # -- range ----------------------------------------------------------

    def count_range(
        self, geometry: LeafGeometry, q_lower: np.ndarray, q_upper: np.ndarray
    ) -> np.ndarray:
        """Leaves whose box overlaps the closed query box ``i``."""
        q_lower = np.ascontiguousarray(q_lower, dtype=np.float64)
        q_upper = np.ascontiguousarray(q_upper, dtype=np.float64)
        n_queries = q_lower.shape[0]
        counts = np.zeros(n_queries, dtype=np.int64)
        if geometry.is_empty or n_queries == 0:
            return counts
        tile = self._tile_height(n_queries, geometry.k)
        for start in range(0, n_queries, tile):
            stop = min(start + tile, n_queries)
            counts[start:stop] = self._range_tile(
                geometry, q_lower[start:stop], q_upper[start:stop]
            )
        return counts

    @staticmethod
    def _range_tile(
        geometry: LeafGeometry, q_lower: np.ndarray, q_upper: np.ndarray
    ) -> np.ndarray:
        lower_t, upper_t = geometry.lower_t, geometry.upper_t
        n_dims = lower_t.shape[0]
        overlap = (q_lower[:, 0][:, None] <= upper_t[0][None, :]) & (
            lower_t[0][None, :] <= q_upper[:, 0][:, None]
        )
        rows, cols = np.nonzero(overlap)
        del overlap
        for j in range(1, n_dims):
            keep = (q_lower[rows, j] <= upper_t[j][cols]) & (
                lower_t[j][cols] <= q_upper[rows, j]
            )
            if not keep.all():
                rows = rows[keep]
                cols = cols[keep]
        return np.bincount(rows, minlength=q_lower.shape[0]).astype(np.int64)


register_kernel("numpy_batched", NumpyBatchedKernel)
