"""High-level facade: one entry point for prediction and measurement.

``IndexCostPredictor`` wires together the dataset file, the workload,
the three prediction methods of the paper, and the measured on-disk
ground truth, deriving page capacities from the disk geometry the way
the paper does.  It is the API the examples and benchmarks use::

    predictor = IndexCostPredictor(dim=60, memory=10_000)
    workload = predictor.make_workload(points, n_queries=500, k=21, seed=1)
    estimate = predictor.predict(points, workload, method="resampled")
    truth = predictor.measure(points, workload)
    error = estimate.relative_error(truth.mean_accesses)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..disk.accounting import DiskParameters
from ..disk.device import SimulatedDisk
from ..disk.pagefile import PointFile
from ..ondisk.builder import OnDiskBuilder, OnDiskIndex
from ..ondisk.measure import MeasurementResult, measure_knn
from ..rtree.bulkload import BulkLoadConfig
from ..workload.queries import (
    KNNWorkload,
    RangeWorkload,
    density_biased_knn_workload,
)
from .counting import PredictionResult
from .cutoff import CutoffModel
from .minindex import MiniIndexModel
from .resampled import ResampledModel
from .topology import Topology, page_capacities

__all__ = ["IndexCostPredictor"]

_METHODS = ("mini", "cutoff", "resampled")


@dataclass
class IndexCostPredictor:
    """Predicts leaf-page accesses of a VAMSplit R*-tree for a workload.

    Page capacities default to what the disk geometry dictates for the
    dimensionality (Section 5's configuration); pass ``c_data`` /
    ``c_dir`` to override.  ``memory`` is the point budget ``M`` of the
    restricted-memory methods.
    """

    dim: int
    memory: int = 10_000
    disk_parameters: DiskParameters = field(default_factory=DiskParameters)
    c_data: int | None = None
    c_dir: int | None = None
    config: BulkLoadConfig | None = None

    def __post_init__(self) -> None:
        default_data, default_dir = page_capacities(
            self.disk_parameters.page_bytes,
            self.dim,
            bytes_per_value=self.disk_parameters.bytes_per_value,
        )
        if self.c_data is None:
            self.c_data = default_data
        if self.c_dir is None:
            self.c_dir = default_dir

    # ------------------------------------------------------------------

    def topology(self, n_points: int) -> Topology:
        return Topology(n_points=n_points, c_data=self.c_data, c_dir=self.c_dir)

    def make_workload(
        self, points: np.ndarray, n_queries: int, k: int, seed: int = 0
    ) -> KNNWorkload:
        """The paper's density-biased k-NN workload, seeded."""
        rng = np.random.default_rng(seed)
        return density_biased_knn_workload(points, n_queries, k, rng)

    def new_file(self, points: np.ndarray) -> PointFile:
        """The dataset on a fresh simulated disk (I/O counters at zero)."""
        disk = SimulatedDisk(self.disk_parameters)
        return PointFile.from_points(disk, points)

    # ------------------------------------------------------------------

    def predict(
        self,
        points: np.ndarray,
        workload: KNNWorkload | RangeWorkload,
        *,
        method: str = "resampled",
        h_upper: int | None = None,
        sampling_fraction: float | None = None,
        seed: int = 0,
    ) -> PredictionResult:
        """Predict mean leaf accesses with the chosen method.

        ``method`` is ``"mini"`` (Section 3, needs ``sampling_fraction``),
        ``"cutoff"`` or ``"resampled"`` (Section 4, use ``memory`` and
        optionally ``h_upper``).  The phased methods run against a fresh
        simulated disk so ``result.io_cost`` is exactly their own I/O.
        """
        points = np.asarray(points, dtype=np.float64)
        rng = np.random.default_rng(seed)
        if method == "mini":
            fraction = sampling_fraction if sampling_fraction is not None else min(
                1.0, self.memory / points.shape[0]
            )
            model = MiniIndexModel(self.c_data, self.c_dir, config=self.config)
            return model.predict(points, workload, fraction, rng)
        if method == "cutoff":
            cutoff = CutoffModel(
                self.c_data, self.c_dir, self.memory, h_upper=h_upper,
                config=self.config,
            )
            return cutoff.predict(self.new_file(points), workload, rng)
        if method == "resampled":
            resampled = ResampledModel(
                self.c_data, self.c_dir, self.memory, h_upper=h_upper,
                config=self.config,
            )
            return resampled.predict(self.new_file(points), workload, rng)
        raise ValueError(f"unknown method {method!r}; options: {_METHODS}")

    # ------------------------------------------------------------------

    def build_ondisk(self, points: np.ndarray) -> OnDiskIndex:
        """Bulk load the real index on a fresh simulated disk."""
        builder = OnDiskBuilder(
            self.c_data, self.c_dir, self.memory, config=self.config
        )
        return builder.build(self.new_file(np.asarray(points, dtype=np.float64)))

    def measure(
        self,
        points: np.ndarray,
        workload: KNNWorkload,
        *,
        index: OnDiskIndex | None = None,
    ) -> MeasurementResult:
        """Measured ground truth: build (or reuse) the on-disk index and
        run the workload's queries on it.  The returned ``io_cost``
        covers the queries only; ``index.build_cost`` has the build."""
        if index is None:
            index = self.build_ondisk(points)
        return measure_knn(index, workload)
