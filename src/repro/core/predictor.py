"""High-level facade: one entry point for prediction and measurement.

``IndexCostPredictor`` wires together the dataset file, the workload,
the three prediction methods of the paper, and the measured on-disk
ground truth, deriving page capacities from the disk geometry the way
the paper does.  It is the API the examples and benchmarks use::

    predictor = IndexCostPredictor(dim=60, memory=10_000)
    workload = predictor.make_workload(points, n_queries=500, k=21, seed=1)
    estimate = predictor.predict(points, workload, method="resampled")
    truth = predictor.measure(points, workload)
    error = estimate.relative_error(truth.mean_accesses)

Resilience: the facade validates its inputs up front
(:class:`~repro.errors.InputValidationError` on NaN/inf or empty
matrices), optionally injects seed-driven disk faults
(``fault_rate`` / ``torn_write_rate`` / ``latency_spike_rate``), and
retries transient faults under ``retry``.  When a method still cannot
finish -- retries exhausted mid-phase -- :meth:`predict` degrades along
``resampled -> cutoff -> mini -> closed-form baseline``, annotating the
returned estimate with a ``degradation`` record and emitting a
:class:`~repro.errors.DegradedResultWarning`.

Self-healing: ``at_rest_corruption_rate`` lets pages rot on the
platter while ``replication_factor`` / ``parity`` provision the copies
repair-on-read heals from; ``scrub=True`` sweeps the file after each
successful prediction and attaches the scrub report.  A rotten page
with no surviving copy raises the non-retryable
:class:`~repro.errors.UnrecoverableCorruptionError`, which degrades
with ``cause="media"``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..baselines.uniform_model import UniformCostModel
from ..disk.accounting import DiskParameters, IOCost
from ..disk.device import SimulatedDisk
from ..disk.faults import FaultInjector
from ..disk.pagefile import PointFile
from ..disk.redundancy import RedundancyPolicy
from ..disk.retry import RetryPolicy
from ..errors import (
    BudgetExceededError,
    CrashPoint,
    DegradedResultWarning,
    InputValidationError,
    PredictionError,
    ReproError,
    UnrecoverableCorruptionError,
    validate_points,
)
from ..kernels.registry import get_kernel
from ..ondisk.builder import OnDiskBuilder, OnDiskIndex
from ..ondisk.measure import MeasurementResult, measure_knn
from ..rtree.bulkload import BulkLoadConfig
from ..runtime.breaker import CircuitBreaker
from ..runtime.budget import Budget
from ..runtime.governor import Governor
from ..runtime.hedge import run_hedged
from ..workload.queries import (
    KNNWorkload,
    RangeWorkload,
    density_biased_knn_workload,
)
from .counting import PredictionResult, count_grid_accesses
from .cutoff import CutoffModel
from .minindex import MiniIndexModel
from .resampled import ResampledModel
from .topology import Topology, page_capacities

__all__ = ["IndexCostPredictor"]

_METHODS = ("mini", "cutoff", "resampled")

#: degradation order -- each method falls back to everything after it
_FALLBACK_CHAIN = ("resampled", "cutoff", "mini", "baseline")


@dataclass
class IndexCostPredictor:
    """Predicts leaf-page accesses of a VAMSplit R*-tree for a workload.

    Page capacities default to what the disk geometry dictates for the
    dimensionality (Section 5's configuration); pass ``c_data`` /
    ``c_dir`` to override.  ``memory`` is the point budget ``M`` of the
    restricted-memory methods.

    ``fault_rate`` (transient read failures), ``torn_write_rate``,
    ``latency_spike_rate``, and ``silent_corruption_rate`` (in-transit
    bit flips) enable deterministic fault injection on the fresh
    simulated disk each phased prediction runs against, seeded by
    ``fault_seed``; ``retry`` governs how charged accesses recover.
    ``verify_checksums`` catches silent corruption as a retryable
    :class:`~repro.errors.ChecksumError` instead of returning flipped
    bits.  ``crash_at`` kills the run with
    :class:`~repro.errors.CrashPoint` before the N-th charged disk
    operation -- crashes are never degraded around; resume via the
    checkpoint/recovery APIs (see :mod:`repro.disk.chaos`).  All-zero
    rates with checksums off are guaranteed zero-overhead: identical
    estimates and identical ledgers to a bare disk.
    """

    dim: int
    memory: int = 10_000
    disk_parameters: DiskParameters = field(default_factory=DiskParameters)
    c_data: int | None = None
    c_dir: int | None = None
    config: BulkLoadConfig | None = None
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    fault_rate: float = 0.0
    torn_write_rate: float = 0.0
    latency_spike_rate: float = 0.0
    silent_corruption_rate: float = 0.0
    #: pages rot on the platter: a persistent seed-deterministic bit
    #: flip, surviving retries and reboots, healed only by a rewrite
    at_rest_corruption_rate: float = 0.0
    fault_seed: int = 0
    #: keep this many copies of every page (1 = just the primary);
    #: extra copies feed repair-on-read and are billed separately as
    #: ``redundancy_cost``
    replication_factor: int = 1
    #: keep XOR parity stripes as a cheaper single-failure fallback
    parity: bool = False
    #: sweep the file for rot after each successful prediction and
    #: attach the report as ``result.detail["scrub"]``
    scrub: bool = False
    #: verify per-page CRC32 sidecar checksums on every charged read
    verify_checksums: bool = False
    #: simulated crash before the N-th charged disk operation (1-based)
    crash_at: int | None = None
    #: shared circuit breaker threaded into every file this predictor
    #: opens; while open, charged accesses fail fast with
    #: :class:`~repro.errors.CircuitOpenError` instead of burning the
    #: retry budget, and the facade degrades to the disk-free methods
    breaker: CircuitBreaker | None = None
    #: counting kernel name (``None`` resolves via ``REPRO_KERNEL``,
    #: then the ``numpy_batched`` default); all kernels return
    #: bit-identical counts, so this only changes speed, never results
    kernel: str | None = None

    def __post_init__(self) -> None:
        # Resolve eagerly so a typo fails at construction with the typed
        # UnknownKernelError, not mid-prediction after a dataset scan.
        get_kernel(self.kernel)
        for name, rate in (
            ("fault_rate", self.fault_rate),
            ("torn_write_rate", self.torn_write_rate),
            ("latency_spike_rate", self.latency_spike_rate),
            ("silent_corruption_rate", self.silent_corruption_rate),
            ("at_rest_corruption_rate", self.at_rest_corruption_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise InputValidationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.crash_at is not None and self.crash_at < 1:
            raise InputValidationError(
                f"crash_at is a 1-based charged-op index, got {self.crash_at}"
            )
        if self.replication_factor < 1:
            raise InputValidationError(
                f"replication_factor counts copies including the primary, "
                f"so it must be >= 1, got {self.replication_factor}"
            )
        if self.replication_factor > 1 or self.parity or self.scrub:
            # repair and scrubbing both need the CRC sidecar to tell a
            # clean page from a rotten one; checksums charge no I/O, so
            # forcing them on costs nothing
            self.verify_checksums = True
        default_data, default_dir = page_capacities(
            self.disk_parameters.page_bytes,
            self.dim,
            bytes_per_value=self.disk_parameters.bytes_per_value,
        )
        if self.c_data is None:
            self.c_data = default_data
        if self.c_dir is None:
            self.c_dir = default_dir

    # ------------------------------------------------------------------

    def topology(self, n_points: int) -> Topology:
        return Topology(n_points=n_points, c_data=self.c_data, c_dir=self.c_dir)

    def make_workload(
        self, points: np.ndarray, n_queries: int, k: int, seed: int = 0
    ) -> KNNWorkload:
        """The paper's density-biased k-NN workload, seeded."""
        points = validate_points(points)
        rng = np.random.default_rng(seed)
        return density_biased_knn_workload(points, n_queries, k, rng)

    def new_file(self, points: np.ndarray) -> PointFile:
        """The dataset on a fresh simulated disk (I/O counters at zero),
        behind the configured fault injector when any rate is set."""
        disk = SimulatedDisk(self.disk_parameters)
        device = disk
        if (self.fault_rate or self.torn_write_rate
                or self.latency_spike_rate or self.silent_corruption_rate
                or self.at_rest_corruption_rate
                or self.crash_at is not None):
            device = FaultInjector(
                disk,
                read_fault_rate=self.fault_rate,
                torn_write_rate=self.torn_write_rate,
                latency_spike_rate=self.latency_spike_rate,
                silent_corruption_rate=self.silent_corruption_rate,
                at_rest_corruption_rate=self.at_rest_corruption_rate,
                seed=self.fault_seed,
                crash_at=self.crash_at,
            )
        return PointFile.from_points(
            device, points, retry=self.retry,
            verify_checksums=self.verify_checksums,
            breaker=self.breaker,
            redundancy=self._redundancy_policy(),
        )

    def _redundancy_policy(self) -> RedundancyPolicy | None:
        """The configured redundancy, or ``None`` when it is unarmed
        (``None`` keeps the file byte-for-byte on the PR 3 cost path)."""
        if self.replication_factor <= 1 and not self.parity:
            return None
        return RedundancyPolicy(
            replication_factor=self.replication_factor, parity=self.parity
        )

    # ------------------------------------------------------------------

    def predict(
        self,
        points: np.ndarray,
        workload: KNNWorkload | RangeWorkload,
        *,
        method: str = "resampled",
        h_upper: int | None = None,
        sampling_fraction: float | None = None,
        seed: int = 0,
        degrade: bool = True,
        budget: Budget | None = None,
        hedge: bool = False,
        clock=None,
    ) -> PredictionResult:
        """Predict mean leaf accesses with the chosen method.

        ``method`` is ``"mini"`` (Section 3, needs ``sampling_fraction``),
        ``"cutoff"`` or ``"resampled"`` (Section 4, use ``memory`` and
        optionally ``h_upper``).  The phased methods run against a fresh
        simulated disk so ``result.io_cost`` is exactly their own I/O.

        If the chosen method dies on an unrecoverable disk fault (or any
        other :class:`~repro.errors.ReproError`) mid-phase, the facade
        falls back along ``resampled -> cutoff -> mini -> closed-form
        baseline``, returns the first estimate that completes, annotated
        with ``result.detail["degradation"]`` (methods attempted, faults
        seen, retries spent, method actually used), and warns with
        :class:`~repro.errors.DegradedResultWarning`.  Pass
        ``degrade=False`` to let the original failure propagate instead.

        ``budget`` makes the prediction *anytime*: a
        :class:`~repro.runtime.governor.Governor` enforces the charged
        I/O-op, wall-clock, and sample-byte limits across every fallback
        attempt, downgrading mid-flight (budget trips degrade the same
        way faults do) and annotating the result with
        ``result.detail["budget"]`` (spend, remaining, per-phase
        breakdown, ``within_budget``).  An ample budget is guaranteed
        zero-interference: bit-identical estimate, identical ledger.
        With ``degrade=False`` a tripped limit raises
        :class:`~repro.errors.BudgetExceededError` /
        :class:`~repro.errors.DeadlineExceededError` instead.

        ``hedge=True`` (requires ``budget.max_seconds``) races the
        governed chain against a cheap concurrent estimate (cutoff on
        its own fresh disk, closed-form if that fails) and serves
        whichever lands inside the deadline, recording which path won in
        ``result.detail["hedge"]``.

        ``clock`` overrides the governor's monotonic clock (a
        zero-argument callable returning seconds).  Tests drive
        deadlines deterministically with a fake clock instead of
        sleeping for real time; production callers leave it ``None``
        for :func:`time.monotonic`.  Ignored when no budget is set
        (there is no governor to time) and under ``hedge=True`` (the
        hedge race is genuinely concurrent, so its deadline must be
        real).
        """
        if method not in _METHODS:
            raise ValueError(f"unknown method {method!r}; options: {_METHODS}")
        points = validate_points(points)
        if hedge:
            if budget is None or budget.max_seconds is None:
                raise InputValidationError(
                    "hedge=True needs a budget with max_seconds set: the "
                    "deadline is what decides which path gets served"
                )
            return self._predict_hedged(
                points, workload, method=method, h_upper=h_upper,
                sampling_fraction=sampling_fraction, seed=seed,
                degrade=degrade, budget=budget,
            )
        return self._predict_governed(
            points, workload, method=method, h_upper=h_upper,
            sampling_fraction=sampling_fraction, seed=seed,
            degrade=degrade, budget=budget, clock=clock,
        )

    def predict_radius_grid(
        self,
        points: np.ndarray,
        workload: KNNWorkload,
        radii_grid: np.ndarray,
        *,
        sampling_fraction: float | None = None,
        seed: int = 0,
    ) -> list[PredictionResult]:
        """Probe one fitted geometry at many radius rows, fused.

        Fits the in-memory mini model once (identical sampling and
        compensation to ``predict(method="mini", seed=seed)``) and
        answers every row of ``radii_grid`` -- ``(g, q)`` per-query
        radii, or ``(g,)`` constant radii -- through a single
        ``count_grid`` dispatch instead of ``g`` separate kernel calls.
        Result ``r`` is bit-identical to
        ``predict(points, workload.with_radii(radii_grid[r]),
        method="mini", seed=seed)``: the fused-grid contract guarantees
        each row equals its stand-alone ``count_knn``.
        """
        points = validate_points(points)
        if not isinstance(workload, KNNWorkload):
            raise InputValidationError(
                "predict_radius_grid needs a KNNWorkload: a radius grid "
                "re-probes the same query spheres at different radii"
            )
        rng = np.random.default_rng(seed)
        fraction = (sampling_fraction if sampling_fraction is not None
                    else min(1.0, self.memory / points.shape[0]))
        model = MiniIndexModel(
            self.c_data, self.c_dir, config=self.config, kernel=self.kernel,
        )
        geometry, detail = model.fit_geometry(points, fraction, rng)
        detail["kernel"] = get_kernel(self.kernel).name
        grid = count_grid_accesses(
            geometry, workload, radii_grid, kernel=self.kernel
        )
        return [
            PredictionResult(
                per_query=grid[r],
                detail={**detail, "grid_row": r, "grid_rows": grid.shape[0]},
            )
            for r in range(grid.shape[0])
        ]

    def _predict_governed(
        self,
        points: np.ndarray,
        workload: KNNWorkload | RangeWorkload,
        *,
        method: str,
        h_upper: int | None,
        sampling_fraction: float | None,
        seed: int,
        degrade: bool,
        budget: Budget | None,
        clock=None,
    ) -> PredictionResult:
        """The degradation chain, optionally under one governed budget."""
        governor: Governor | None = None
        if budget is not None and not budget.unlimited:
            if clock is not None:
                governor = Governor(budget, clock=clock)
            else:
                governor = Governor(budget)

        chain = _FALLBACK_CHAIN[_FALLBACK_CHAIN.index(method):]
        attempts: list[dict] = []
        faults_before = retries_before = 0
        last_error: ReproError | None = None
        for fallback in chain:
            file: PointFile | None = None
            if governor is not None and fallback != "baseline":
                # admission control: skip an attempt whose cheapest
                # possible execution already cannot fit, instead of
                # burning a scan on it -- the mid-flight downgrade
                try:
                    governor.require_ops(
                        self._min_ops(fallback, points.shape[0], workload),
                        phase=f"admit:{fallback}",
                    )
                    governor.check_deadline(f"admit:{fallback}")
                except BudgetExceededError as error:
                    if not degrade:
                        raise
                    attempts.append({
                        "method": fallback,
                        "error": f"{type(error).__name__}: {error}",
                        "faults_seen": 0,
                        "retries": 0,
                        "cause": "budget",
                        "skipped": True,
                    })
                    last_error = error
                    continue
            try:
                if fallback in ("cutoff", "resampled"):
                    file = self.new_file(points)
                result = self._predict_once(
                    fallback, points, file, workload,
                    h_upper=h_upper, sampling_fraction=sampling_fraction,
                    seed=seed, governor=governor,
                )
            except ReproError as error:
                spent = file.disk.cost if file is not None else IOCost()
                if governor is not None:
                    governor.observe(f"{fallback}:aborted", spent)
                    governor.end_attempt()
                # bad caller input is a bug to surface, not a disk fault
                # to degrade around -- and a crash is the *process*
                # dying, so there is nobody left to run a fallback; the
                # caller must recover/resume and call again
                if (not degrade
                        or isinstance(error, (InputValidationError,
                                              CrashPoint))):
                    raise
                if isinstance(error, BudgetExceededError):
                    cause = "budget"
                elif isinstance(error, UnrecoverableCorruptionError):
                    cause = "media"
                else:
                    cause = "fault"
                attempts.append({
                    "method": fallback,
                    "error": f"{type(error).__name__}: {error}",
                    "faults_seen": spent.faults_seen,
                    "retries": spent.retries,
                    "cause": cause,
                })
                faults_before += spent.faults_seen
                retries_before += spent.retries
                last_error = error
                continue
            if governor is not None:
                governor.observe(fallback, result.io_cost)
                governor.end_attempt()
            if file is not None and file.redundancy is not None:
                rc = file.redundancy.redundancy_cost
                result.detail["redundancy"] = {
                    "replication_factor": self.replication_factor,
                    "parity": self.parity,
                    "repairs": file.redundancy.repairs,
                    "redundancy_seeks": rc.seeks,
                    "redundancy_transfers": rc.transfers,
                }
            if self.scrub and file is not None:
                report = file.scrub(governor=governor)
                if governor is not None:
                    governor.end_attempt()
                result.detail["scrub"] = report.as_dict()
            self._annotate_degradation(
                result, method, fallback, attempts,
                faults_before, retries_before,
            )
            if governor is not None:
                result.detail["budget"] = governor.report()
            return result
        raise PredictionError(
            f"every prediction method failed "
            f"({', '.join(a['method'] for a in attempts)}); last error: "
            f"{attempts[-1]['error'] if attempts else 'none'}"
        ) from last_error

    def _predict_hedged(
        self,
        points: np.ndarray,
        workload: KNNWorkload | RangeWorkload,
        *,
        method: str,
        h_upper: int | None,
        sampling_fraction: float | None,
        seed: int,
        degrade: bool,
        budget: Budget,
    ) -> PredictionResult:
        """Race the governed chain against a cheap concurrent estimate."""
        def primary() -> PredictionResult:
            return self._predict_governed(
                points, workload, method=method, h_upper=h_upper,
                sampling_fraction=sampling_fraction, seed=seed,
                degrade=degrade, budget=budget,
            )

        def cheap() -> PredictionResult:
            return self._hedge_estimate(
                points, workload, h_upper=h_upper, seed=seed
            )

        outcome = run_hedged(primary, cheap, deadline_s=budget.max_seconds)
        result = outcome.result
        result.detail["hedge"] = {
            "winner": outcome.winner,
            "elapsed_s": outcome.elapsed_s,
            "primary_completed": outcome.primary_completed,
            "hedge_completed": outcome.hedge_completed,
        }
        return result

    def _hedge_estimate(
        self,
        points: np.ndarray,
        workload: KNNWorkload | RangeWorkload,
        *,
        h_upper: int | None,
        seed: int,
    ) -> PredictionResult:
        """The cheap path of a hedged prediction: cutoff on its own
        fresh disk (the two paths' ledgers never mix), closed-form if
        even that fails.  Ungoverned -- the deadline in
        :func:`~repro.runtime.hedge.run_hedged` bounds it."""
        try:
            result = self._predict_once(
                "cutoff", points, self.new_file(points), workload,
                h_upper=h_upper, sampling_fraction=None, seed=seed,
                governor=None,
            )
            result.detail["hedge_method"] = "cutoff"
        except ReproError:
            result = self._closed_form_baseline(points, workload)
            result.detail["hedge_method"] = "baseline"
        return result

    def _min_ops(
        self,
        method: str,
        n_points: int,
        workload: KNNWorkload | RangeWorkload,
    ) -> int:
        """Conservative lower bound on a method's charged operations.

        The phased methods must read each query point and scan the whole
        file at least once; everything else (spills, lower builds) only
        adds to it.  The in-memory methods charge nothing."""
        if method not in ("cutoff", "resampled"):
            return 0
        pages = -(-n_points // self.disk_parameters.points_per_page(self.dim))
        queries = (len(workload.query_ids)
                   if isinstance(workload, KNNWorkload) else 0)
        return queries + pages + 1

    def _predict_once(
        self,
        method: str,
        points: np.ndarray,
        file: PointFile | None,
        workload: KNNWorkload | RangeWorkload,
        *,
        h_upper: int | None,
        sampling_fraction: float | None,
        seed: int,
        governor: Governor | None = None,
    ) -> PredictionResult:
        """One attempt of one method, on a fresh rng seeded identically
        so a fallback run is bit-identical to calling it directly."""
        rng = np.random.default_rng(seed)
        if method == "mini":
            fraction = sampling_fraction if sampling_fraction is not None else min(
                1.0, self.memory / points.shape[0]
            )
            if governor is not None:
                governor.admit_sample(
                    max(1, int(np.ceil(points.shape[0] * fraction))),
                    points.shape[1], phase="mini:sample",
                )
            model = MiniIndexModel(
                self.c_data, self.c_dir, config=self.config,
                kernel=self.kernel,
            )
            return model.predict(points, workload, fraction, rng)
        if method == "cutoff":
            cutoff = CutoffModel(
                self.c_data, self.c_dir, self.memory, h_upper=h_upper,
                config=self.config, kernel=self.kernel,
            )
            return cutoff.predict(file, workload, rng, governor=governor)
        if method == "resampled":
            resampled = ResampledModel(
                self.c_data, self.c_dir, self.memory, h_upper=h_upper,
                config=self.config, kernel=self.kernel,
            )
            return resampled.predict(file, workload, rng, governor=governor)
        if method == "baseline":
            return self._closed_form_baseline(points, workload)
        raise ValueError(f"unknown method {method!r}")

    def _closed_form_baseline(
        self,
        points: np.ndarray,
        workload: KNNWorkload | RangeWorkload,
    ) -> PredictionResult:
        """Last-resort estimate from the uniform closed-form model.

        Touches no disk at all, so no fault can reach it; accuracy is
        whatever uniformity buys (Section 5.3's baseline), which is why
        it sits at the very end of the degradation chain.
        """
        n, dim = points.shape
        topology = self.topology(n)
        try:
            model = UniformCostModel(n, dim, topology.c_eff_data)
            if isinstance(workload, KNNWorkload):
                value = model.predict_knn_accesses(workload.k)
                per_query = np.full(workload.n_queries, value)
            else:
                sides = (workload.upper - workload.lower).mean(axis=1)
                per_query = np.array([
                    model.predict_range_accesses(float(side)) for side in sides
                ])
        except ValueError as error:
            raise PredictionError(
                f"closed-form baseline infeasible: {error}"
            ) from error
        return PredictionResult(
            per_query=per_query,
            detail={"baseline": "uniform-closed-form"},
        )

    @staticmethod
    def _annotate_degradation(
        result: PredictionResult,
        method_requested: str,
        method_used: str,
        attempts: list[dict],
        faults_before: int,
        retries_before: int,
    ) -> None:
        """Attach the degradation record when anything noteworthy
        happened: a fallback was taken, or faults/retries were absorbed
        on the way to a successful estimate."""
        absorbed_faults = faults_before + result.io_cost.faults_seen
        absorbed_retries = retries_before + result.io_cost.retries
        if not attempts and not absorbed_faults and not absorbed_retries:
            return
        result.detail["degradation"] = {
            "method_requested": method_requested,
            "method_used": method_used,
            "attempts": list(attempts),
            "faults_seen": absorbed_faults,
            "retries": absorbed_retries,
        }
        if method_used != method_requested:
            warnings.warn(
                f"prediction degraded from {method_requested!r} to "
                f"{method_used!r} after "
                f"{len(attempts)} failed attempt"
                f"{'s' if len(attempts) != 1 else ''} "
                f"({absorbed_faults} faults, {absorbed_retries} retries)",
                DegradedResultWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------

    def build_ondisk(self, points: np.ndarray) -> OnDiskIndex:
        """Bulk load the real index on a fresh simulated disk."""
        builder = OnDiskBuilder(
            self.c_data, self.c_dir, self.memory, config=self.config
        )
        return builder.build(self.new_file(validate_points(points)))

    def measure(
        self,
        points: np.ndarray,
        workload: KNNWorkload,
        *,
        index: OnDiskIndex | None = None,
    ) -> MeasurementResult:
        """Measured ground truth: build (or reuse) the on-disk index and
        run the workload's queries on it.  The returned ``io_cost``
        covers the queries only; ``index.build_cost`` has the build."""
        points = validate_points(points)
        if index is None:
            index = self.build_ondisk(points)
        return measure_knn(index, workload)
