"""Tree topology shared by the full index, the mini-index, and the cost model.

The paper's prediction accuracy hinges on *structural similarity*: the
mini-index must have the same height, the same number of nodes at each
level, and the same per-node fanouts as the full on-disk index
(Section 3.1).  We therefore compute the structure once, from the full
dataset size and the page capacities, and hand the same
:class:`Topology` object to every consumer:

* the bulk loader partitions sample points at ranks proportional to the
  full-data ranks, so the mini-tree reproduces the node counts exactly;
* the phased predictors derive ``pts(h)`` (points per subtree rooted at
  level ``h``) and the bounds on ``h_upper`` (Section 4.5.1) from it;
* the analytical cost model (Eqs. 1-5) prices the same recursion.

Level convention (paper footnote 2): leaves are at level 1, the root at
level ``height``; an empty tree has height 0 and a single node height 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

__all__ = [
    "Topology",
    "tree_height",
    "subtree_capacity",
    "split_child_counts",
    "page_capacities",
]


def page_capacities(
    page_bytes: int,
    dim: int,
    *,
    bytes_per_value: int = 4,
    pointer_bytes: int = 4,
) -> tuple[int, int]:
    """(``C_max,data``, ``C_max,dir``) for a page size and dimensionality.

    A data page stores ``dim`` coordinates per point; a directory page
    stores per entry an MBR (two corners) plus a child pointer.  With
    the paper's 8 KB pages and 60-d float data this yields (34, 16),
    which makes the paper's TEXTURE60 numbers (height 5, 8,641 leaves,
    ``sigma_upper = 0.0363``, ``sigma_lower = 1`` at ``h_upper = 3``)
    internally consistent.
    """
    if page_bytes < 1 or dim < 1:
        raise ValueError("page_bytes and dim must be positive")
    c_data = max(2, page_bytes // (dim * bytes_per_value))
    c_dir = max(2, page_bytes // (2 * dim * bytes_per_value + pointer_bytes))
    return c_data, c_dir


def tree_height(n_points: int, c_data: int, c_dir: int) -> int:
    """Height of a bulk-loaded tree over ``n_points`` points.

    The smallest ``h`` such that a tree of height ``h`` (leaf pages of
    capacity ``c_data``, directory pages of capacity ``c_dir``) can hold
    all points.
    """
    if n_points < 0:
        raise ValueError("n_points must be non-negative")
    if c_data < 1 or c_dir < 2:
        raise ValueError("capacities must satisfy c_data >= 1, c_dir >= 2")
    if n_points == 0:
        return 0
    height = 1
    while subtree_capacity(height, c_data, c_dir) < n_points:
        height += 1
    return height


def subtree_capacity(level: int, c_data: int, c_dir: int) -> int:
    """Maximum number of points under a subtree rooted at ``level``."""
    if level < 1:
        raise ValueError("level must be >= 1")
    return c_data * c_dir ** (level - 1)


def split_child_counts(n_points: int, n_children: int, child_capacity: int) -> tuple[int, int]:
    """VAMSplit binary division of ``n_points`` among ``n_children`` subtrees.

    The bulk loader realizes an ``f``-way partition as a sequence of
    binary splits: the left side receives ``floor(f/2)`` children and a
    proportional share of the points, adjusted so that neither side
    exceeds its capacity.  Returns ``(n_left, n_right)``.
    """
    if n_children < 2:
        raise ValueError("binary split needs at least 2 children")
    if n_points > n_children * child_capacity:
        raise ValueError(
            f"{n_points} points exceed {n_children} x {child_capacity} capacity"
        )
    f_left = n_children // 2
    f_right = n_children - f_left
    n_left = round(n_points * f_left / n_children)
    # Clamp so both sides fit and neither side is starved below the
    # minimum needed to populate its children (>= 1 point per child).
    n_left = min(n_left, f_left * child_capacity)
    n_left = max(n_left, n_points - f_right * child_capacity)
    n_left = max(min(n_left, n_points - f_right), f_left)
    return n_left, n_points - n_left


@dataclass(frozen=True)
class Topology:
    """Structure of a bulk-loaded index over ``n_points`` points.

    Parameters mirror Table 2 of the paper: ``c_data`` is the maximum
    data-page capacity ``C_max,data`` and ``c_dir`` the maximum
    directory-page capacity ``C_max,dir``.
    """

    n_points: int
    c_data: int
    c_dir: int

    def __post_init__(self) -> None:
        if self.n_points < 1:
            raise ValueError("topology requires at least one point")
        if self.c_data < 1 or self.c_dir < 2:
            raise ValueError("capacities must satisfy c_data >= 1, c_dir >= 2")

    @cached_property
    def height(self) -> int:
        return tree_height(self.n_points, self.c_data, self.c_dir)

    @cached_property
    def nodes_per_level(self) -> tuple[int, ...]:
        """Number of nodes at each level; index 0 is level 1 (leaves).

        Computed by running the bulk loader's integer recursion (fanout
        and binary point division) without touching any data, so it is
        exact for the partitioner in :mod:`repro.rtree.bulkload`.
        """
        counts = [0] * self.height
        # Iterative DFS over (level, n_points_in_subtree).
        stack = [(self.height, self.n_points)]
        while stack:
            level, n = stack.pop()
            counts[level - 1] += 1
            if level == 1:
                continue
            for part in self.partition_sizes(level, n):
                stack.append((level - 1, part))
        return tuple(counts)

    def partition_sizes(self, level: int, n: int) -> list[int]:
        """Point counts of the children of a ``level``-node holding ``n`` points.

        The fanout is ``ceil(n / capacity(level - 1))`` (Berchtold et
        al. bulk loading); the division into that many parts proceeds by
        recursive binary splits (:func:`split_child_counts`).
        """
        if level < 2:
            raise ValueError("leaf nodes have no children")
        child_cap = subtree_capacity(level - 1, self.c_data, self.c_dir)
        fanout = max(1, math.ceil(n / child_cap))
        parts: list[int] = []
        pending = [(fanout, n)]
        while pending:
            f, m = pending.pop()
            if f == 1:
                parts.append(m)
                continue
            n_left, n_right = split_child_counts(m, f, child_cap)
            pending.append((f - f // 2, n_right))
            pending.append((f // 2, n_left))
        return parts

    def nodes_at_level(self, level: int) -> int:
        """Number of nodes at ``level`` (leaves = 1, root = ``height``)."""
        if not 1 <= level <= self.height:
            raise ValueError(f"level {level} outside [1, {self.height}]")
        return self.nodes_per_level[level - 1]

    @property
    def n_leaves(self) -> int:
        return self.nodes_at_level(1)

    @property
    def c_eff_data(self) -> float:
        """Effective data-page capacity ``C_eff,data`` (points per leaf)."""
        return self.n_points / self.n_leaves

    @property
    def c_eff_dir(self) -> float:
        """Effective directory-page capacity ``C_eff,dir``."""
        if self.height == 1:
            return float(self.c_dir)
        internal = sum(self.nodes_per_level[1:])
        children = sum(self.nodes_per_level[:-1])
        return children / internal

    def pts(self, level: int) -> float:
        """Average number of data points under a subtree rooted at ``level``.

        ``pts(height) == n_points`` and ``pts(1) == c_eff_data`` as in
        Section 4.2 of the paper.
        """
        return self.n_points / self.nodes_at_level(level)

    def fanout(self, level: int) -> float:
        """Average fanout of nodes at ``level`` (level >= 2)."""
        if not 2 <= level <= self.height:
            raise ValueError(f"fanout defined for levels 2..{self.height}")
        return self.nodes_at_level(level - 1) / self.nodes_at_level(level)

    # ------------------------------------------------------------------
    # Upper-tree height bounds (Section 4.5.1)
    # ------------------------------------------------------------------

    def upper_leaf_level(self, h_upper: int) -> int:
        """Level (in the full tree) of the upper tree's leaf pages."""
        if not 1 <= h_upper <= self.height:
            raise ValueError(f"h_upper {h_upper} outside [1, {self.height}]")
        return self.height - h_upper + 1

    def n_upper_leaves(self, h_upper: int) -> int:
        """``k``: number of upper-tree leaf pages for a given ``h_upper``."""
        return self.nodes_at_level(self.upper_leaf_level(h_upper))

    def sigma_upper(self, memory: int) -> float:
        """Upper-tree sampling ratio ``min(M / N, 1)``."""
        if memory < 1:
            raise ValueError("memory must hold at least one point")
        return min(memory / self.n_points, 1.0)

    def sigma_lower(self, h_upper: int, memory: int) -> float:
        """Lower-tree sampling ratio ``min(k * M / N, 1)`` (Section 4.4)."""
        k = self.n_upper_leaves(h_upper)
        return min(k * memory / self.n_points, 1.0)

    def h_upper_bounds(self, memory: int) -> tuple[int, int]:
        """(``h_min,upper``, ``h_max,upper``) per Section 4.5.1.

        Lower bound: a resampled lower tree must keep >= 2 points per
        leaf, i.e. ``N * sigma_lower / n_leaves >= 2``.  Upper bound: the
        upper tree's own leaves must keep >= 2 points, i.e.
        ``M / n_upper_leaves >= 2``.  Raises ``ValueError`` when memory
        is too small for any valid choice.
        """
        if self.height < 3:
            raise ValueError("phased prediction needs a tree of height >= 3")
        candidates = range(2, self.height)
        lower_ok = [
            h
            for h in candidates
            if self.n_points * self.sigma_lower(h, memory) / self.n_leaves >= 2
        ]
        upper_ok = [h for h in candidates if memory / self.n_upper_leaves(h) >= 2]
        if not lower_ok or not upper_ok:
            raise ValueError(
                f"memory M={memory} leaves no feasible h_upper for "
                f"N={self.n_points}, height={self.height}"
            )
        h_min, h_max = min(lower_ok), max(upper_ok)
        if h_min > h_max:
            raise ValueError(
                f"infeasible h_upper range [{h_min}, {h_max}] for M={memory}"
            )
        return h_min, h_max

    def best_h_upper(self, memory: int) -> int:
        """The error-minimizing ``h_upper`` heuristic of Section 4.5.2.

        Choose ``h_upper`` so that the *unsampled* size of a lower tree,
        ``pts(upper_leaf_level)``, is closest to the memory size ``M``
        (so each lower tree just fills memory at ``sigma_lower == 1``),
        subject to the feasibility bounds.
        """
        h_min, h_max = self.h_upper_bounds(memory)
        return min(
            range(h_min, h_max + 1),
            key=lambda h: abs(math.log(self.pts(self.upper_leaf_level(h)) / memory)),
        )
