"""Page-access counting against a predicted leaf-page layout.

Every prediction method in the paper ends the same way: given the
(estimated, compensation-grown) leaf pages and the query workload,
count for each query how many pages its region intersects and report
the average (Figures 5 and 7, last steps).  This module is that shared
final step, for both k-NN spheres and range boxes -- now a thin
dispatch through the counting-kernel registry
(:mod:`repro.kernels`), so every predictor runs the same batched fast
path and the backend is selected in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..disk.accounting import IOCost
from ..kernels.geometry import LeafGeometry
from ..kernels.registry import get_kernel
from ..workload.queries import KNNWorkload, RangeWorkload

__all__ = [
    "PredictionResult",
    "count_accesses",
    "count_grid_accesses",
    "knn_accesses_per_query",
    "range_accesses_per_query",
]


@dataclass(frozen=True)
class PredictionResult:
    """Outcome of one prediction run.

    ``per_query`` holds the predicted leaf-page accesses of each query
    (the paper's correlation diagrams plot these against measurements);
    ``io_cost`` is the seek/transfer count the *prediction itself*
    incurred on the simulated disk (zero for the unrestricted-memory
    model).  ``detail`` carries method-specific diagnostics such as the
    sampling ratios and counting kernel used.
    """

    per_query: np.ndarray
    io_cost: IOCost = field(default_factory=IOCost)
    detail: dict = field(default_factory=dict)

    @property
    def mean_accesses(self) -> float:
        """Average predicted leaf-page accesses per query."""
        return float(np.mean(self.per_query))

    def relative_error(self, measured_mean: float) -> float:
        """Signed relative error vs. a measured mean (paper's metric:
        negative = underestimation, positive = overestimation)."""
        if measured_mean <= 0:
            raise ValueError("measured mean must be positive")
        return (self.mean_accesses - measured_mean) / measured_mean


def count_accesses(
    geometry: LeafGeometry,
    workload: KNNWorkload | RangeWorkload,
    *,
    kernel: str | None = None,
) -> np.ndarray:
    """Per-query count of leaf pages each query region intersects.

    Dispatches on the workload type (k-NN spheres vs. range boxes) and
    on the selected counting kernel; all kernels return bit-identical
    counts, so ``kernel`` is purely a performance choice.
    """
    backend = get_kernel(kernel)
    if isinstance(workload, KNNWorkload):
        return backend.count_knn(geometry, workload.queries, workload.radii)
    return backend.count_range(geometry, workload.lower, workload.upper)


def count_grid_accesses(
    geometry: LeafGeometry,
    workload: KNNWorkload,
    radii_grid: np.ndarray,
    *,
    kernel: str | None = None,
) -> np.ndarray:
    """Fused (queries x radii) counts: one geometry pass, ``(g, q)`` rows.

    Row ``r`` is bit-identical to
    ``count_accesses(geometry, workload.with_radii(radii_grid[r]))`` --
    the fused dispatch exists so sweeps probing one geometry at many
    radius rows stop re-dispatching the kernel per row.  ``radii_grid``
    may be ``(g, q)`` or ``(g,)`` (a constant radius per row).
    """
    backend = get_kernel(kernel)
    return backend.count_grid(geometry, workload.queries, radii_grid)


def knn_accesses_per_query(
    lower: np.ndarray,
    upper: np.ndarray,
    workload: KNNWorkload,
    *,
    kernel: str | None = None,
) -> np.ndarray:
    """Per-query count of leaf boxes intersecting each k-NN sphere."""
    return get_kernel(kernel).count_knn(
        LeafGeometry.from_corners(lower, upper), workload.queries, workload.radii
    )


def range_accesses_per_query(
    lower: np.ndarray,
    upper: np.ndarray,
    workload: RangeWorkload,
    *,
    kernel: str | None = None,
) -> np.ndarray:
    """Per-query count of leaf boxes intersecting each range box."""
    return get_kernel(kernel).count_range(
        LeafGeometry.from_corners(lower, upper), workload.lower, workload.upper
    )
