"""Page-access counting against a predicted leaf-page layout.

Every prediction method in the paper ends the same way: given the
(estimated, compensation-grown) leaf pages and the query workload,
count for each query how many pages its region intersects and report
the average (Figures 5 and 7, last steps).  This module is that shared
final step, for both k-NN spheres and range boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..disk.accounting import IOCost
from ..rtree.geometry import intersects_box, mindist_sq_point_to_boxes
from ..workload.queries import KNNWorkload, RangeWorkload

__all__ = ["PredictionResult", "knn_accesses_per_query", "range_accesses_per_query"]


@dataclass(frozen=True)
class PredictionResult:
    """Outcome of one prediction run.

    ``per_query`` holds the predicted leaf-page accesses of each query
    (the paper's correlation diagrams plot these against measurements);
    ``io_cost`` is the seek/transfer count the *prediction itself*
    incurred on the simulated disk (zero for the unrestricted-memory
    model).  ``detail`` carries method-specific diagnostics such as the
    sampling ratios used.
    """

    per_query: np.ndarray
    io_cost: IOCost = field(default_factory=IOCost)
    detail: dict = field(default_factory=dict)

    @property
    def mean_accesses(self) -> float:
        """Average predicted leaf-page accesses per query."""
        return float(np.mean(self.per_query))

    def relative_error(self, measured_mean: float) -> float:
        """Signed relative error vs. a measured mean (paper's metric:
        negative = underestimation, positive = overestimation)."""
        if measured_mean <= 0:
            raise ValueError("measured mean must be positive")
        return (self.mean_accesses - measured_mean) / measured_mean


def knn_accesses_per_query(
    lower: np.ndarray, upper: np.ndarray, workload: KNNWorkload
) -> np.ndarray:
    """Per-query count of leaf boxes intersecting each k-NN sphere."""
    counts = np.zeros(workload.n_queries, dtype=np.int64)
    if lower.shape[0] == 0:
        return counts
    radii_sq = workload.radii * workload.radii
    for i, query in enumerate(workload.queries):
        dists = mindist_sq_point_to_boxes(query, lower, upper)
        counts[i] = int(np.count_nonzero(dists <= radii_sq[i]))
    return counts


def range_accesses_per_query(
    lower: np.ndarray, upper: np.ndarray, workload: RangeWorkload
) -> np.ndarray:
    """Per-query count of leaf boxes intersecting each range box."""
    counts = np.zeros(workload.n_queries, dtype=np.int64)
    if lower.shape[0] == 0:
        return counts
    for i in range(workload.n_queries):
        hits = intersects_box(lower, upper, workload.lower[i], workload.upper[i])
        counts[i] = int(np.count_nonzero(hits))
    return counts
