"""The unrestricted-memory mini-index predictor (Section 3).

Sample the dataset, bulk load a mini-index *with the full index's
topology* on the sample, grow every leaf page by the compensation
factor of Theorem 1, then count query-region/leaf-page intersections.
This is the conceptually pure model; the phased predictors in
:mod:`repro.core.cutoff` and :mod:`repro.core.resampled` are its
restricted-memory implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.registry import get_kernel
from ..rtree.bulkload import BulkLoadConfig
from ..rtree.tree import RTree
from ..workload.queries import KNNWorkload, RangeWorkload
from .compensation import grow_geometry
from .counting import PredictionResult, count_accesses
from .topology import Topology

__all__ = ["MiniIndexModel"]


@dataclass(frozen=True)
class MiniIndexModel:
    """Sampling-based predictor with the whole sample held in memory.

    ``compensate=False`` disables Theorem 1's page growth -- that is the
    "no compensation" series of Figure 2.  ``kernel`` selects the
    counting backend; all kernels are bit-identical, so it never changes
    the prediction.
    """

    c_data: int
    c_dir: int
    compensate: bool = True
    config: BulkLoadConfig | None = None
    kernel: str | None = None

    def predict(
        self,
        points: np.ndarray,
        workload: KNNWorkload | RangeWorkload,
        sampling_fraction: float,
        rng: np.random.Generator,
    ) -> PredictionResult:
        """Predict mean leaf-page accesses from a fresh random sample.

        ``sampling_fraction`` is the paper's ``zeta``; it must exceed
        ``1/C`` so that sampled pages retain volume (Section 3.3).
        """
        geometry, detail = self.fit_geometry(points, sampling_fraction, rng)
        per_query = count_accesses(geometry, workload, kernel=self.kernel)
        detail["kernel"] = get_kernel(self.kernel).name
        return PredictionResult(per_query=per_query, detail=detail)

    def fit_geometry(
        self,
        points: np.ndarray,
        sampling_fraction: float,
        rng: np.random.Generator,
    ) -> tuple["LeafGeometry", dict]:
        """The fitted, compensation-grown leaf geometry and its record.

        This is the *model* half of :meth:`predict` -- everything up to
        (but not including) the counting dispatch.  The returned
        geometry is what a warm-start artifact persists: counting it
        against any workload reproduces :meth:`predict` bit-identically
        for the same sample, which is the service layer's
        save/load-equality contract.
        """
        points = np.asarray(points, dtype=np.float64)
        n = points.shape[0]
        if not 0 < sampling_fraction <= 1:
            raise ValueError("sampling_fraction must be in (0, 1]")
        n_sample = max(1, round(n * sampling_fraction))
        if n_sample < n:
            sample_ids = rng.choice(n, size=n_sample, replace=False)
            sample = points[sample_ids]
        else:
            sample = points
        tree = self.build_mini_index(sample, n)
        geometry = tree.leaf_geometry
        zeta = sample.shape[0] / n
        compensated = False
        if self.compensate and zeta < 1.0:
            try:
                geometry = grow_geometry(
                    geometry, tree.topology.c_eff_data, zeta
                )
                compensated = True
            except ValueError:
                # zeta <= 1/C: sampled pages expect at most one point and
                # Theorem 1 is undefined (Section 3.3) -- predict from
                # the raw sampled pages, as the paper's Figure 2 does in
                # that regime.
                pass
        return geometry, {
            "zeta": zeta,
            "n_sample": sample.shape[0],
            "n_mini_leaves": geometry.k,
            "compensated": compensated,
        }

    def build_mini_index(self, sample: np.ndarray, full_n: int) -> RTree:
        """The mini-index: full-index topology imposed on the sample."""
        return RTree.bulk_load(
            sample,
            self.c_data,
            self.c_dir,
            virtual_n=full_n,
            config=self.config,
        )

    def topology_for(self, full_n: int) -> Topology:
        return Topology(n_points=full_n, c_data=self.c_data, c_dir=self.c_dir)
