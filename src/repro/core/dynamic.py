"""Sampling-based prediction for *dynamic* (insertion-built) indexes.

Section 4.7 claims the technique covers "all index structures that
organize the data in fixed-capacity pages" -- not just bulk-loaded
ones.  For a tuple-at-a-time R*-tree there is no fixed topology to
impose, so the mini-index follows the paper's original Section 3
recipe literally: run the *same insertion algorithm* on a sample with
the data-page capacity scaled by the sampling fraction ("if we use as
a sample 1/10 of the original data ... the page capacity is reduced by
the factor 1/10"), then grow the resulting leaf pages by Theorem 1's
compensation factor.

The effective page capacity of the full index is not known without
building it; it is estimated from the mini-index itself -- R*-tree
page utilization is scale-free, so ``C_eff ~ C_max * (mini occupancy /
mini capacity)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.registry import get_kernel
from ..rtree.rstar import FrozenRStarTree, RStarTree
from ..workload.queries import KNNWorkload, RangeWorkload
from .compensation import grow_geometry
from .counting import PredictionResult, count_accesses

__all__ = ["DynamicMiniIndexModel", "measure_dynamic_index"]


def measure_dynamic_index(
    points: np.ndarray,
    c_data: int,
    c_dir: int,
    *,
    shuffle_seed: int | None = 0,
) -> FrozenRStarTree:
    """Build the full dynamic R*-tree (the measurement baseline)."""
    tree = RStarTree.build(
        np.asarray(points, dtype=np.float64), c_data, c_dir,
        shuffle_seed=shuffle_seed,
    )
    return tree.freeze()


@dataclass(frozen=True)
class DynamicMiniIndexModel:
    """Mini-index predictor for the dynamic R*-tree (Section 3 recipe)."""

    c_data: int
    c_dir: int
    compensate: bool = True
    kernel: str | None = None

    def predict(
        self,
        points: np.ndarray,
        workload: KNNWorkload | RangeWorkload,
        sampling_fraction: float,
        rng: np.random.Generator,
        *,
        shuffle_seed: int | None = 0,
    ) -> PredictionResult:
        """Predict mean leaf accesses of the full R*-tree from a sample.

        The mini-tree's data pages have capacity
        ``max(2, round(C_data * zeta))``; directory capacity is kept
        (the directory describes pages, whose *count* is preserved).
        """
        points = np.asarray(points, dtype=np.float64)
        n = points.shape[0]
        if not 0 < sampling_fraction <= 1:
            raise ValueError("sampling_fraction must be in (0, 1]")
        n_sample = max(2, round(n * sampling_fraction))
        if n_sample < n:
            sample = points[rng.choice(n, size=n_sample, replace=False)]
        else:
            sample = points
        zeta = sample.shape[0] / n

        c_mini = max(2, round(self.c_data * zeta))
        mini = RStarTree.build(
            sample, c_mini, self.c_dir, shuffle_seed=shuffle_seed
        ).freeze()
        geometry = mini.leaf_geometry

        occupancy = sample.shape[0] / max(1, mini.n_leaves)
        c_eff_estimate = self.c_data * (occupancy / c_mini)
        compensated = False
        if self.compensate and zeta < 1.0 and c_eff_estimate * zeta > 1.0:
            try:
                geometry = grow_geometry(geometry, c_eff_estimate, zeta)
                compensated = True
            except ValueError:
                pass
        per_query = count_accesses(geometry, workload, kernel=self.kernel)
        return PredictionResult(
            per_query=per_query,
            detail={
                "zeta": zeta,
                "c_mini": c_mini,
                "n_mini_leaves": int(mini.n_leaves),
                "c_eff_estimate": c_eff_estimate,
                "compensated": compensated,
                "kernel": get_kernel(self.kernel).name,
            },
        )
