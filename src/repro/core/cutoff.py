"""The cutoff index tree predictor (Section 4.3).

After building and growing the upper tree, the cutoff method predicts
each lower tree *without touching the data again*: it assumes the
points inside an upper-tree leaf page are uniformly distributed and
replays the splits the bulk loader would perform -- under uniformity
the maximum-variance dimension is the maximum-extent dimension, and a
rank split at ``m`` of ``n`` points cuts the extent at fraction
``m / n``.  The resulting synthetic leaf pages tile each upper leaf.

Unlike the fully uniform models of Berchtold et al., uniformity is
assumed only *within* an upper-tree leaf whose geometry was measured
from the sample, and the real fanout/split schedule of the index is
used (the paper's key distinction).

I/O cost: only the query-point reads and the single dataset scan
(Eq. 3) -- the lower-tree synthesis is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..disk.pagefile import PointFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.governor import Governor
from ..kernels.geometry import LeafGeometry
from ..kernels.registry import get_kernel
from ..rtree.bulkload import BulkLoadConfig
from ..workload.queries import KNNWorkload, RangeWorkload
from .counting import PredictionResult, count_accesses
from .phases import build_upper_tree, resolve_h_upper
from .sampling_io import read_query_points, scan_and_sample
from .topology import Topology, split_child_counts, subtree_capacity

__all__ = ["CutoffModel", "synthesize_uniform_leaves"]


def synthesize_uniform_leaves(
    lower: np.ndarray,
    upper: np.ndarray,
    level: int,
    n_virtual: int,
    topology: Topology,
) -> tuple[np.ndarray, np.ndarray]:
    """Leaf boxes the bulk loader would create inside a uniform page.

    Recursively applies the loader's fanout and binary-division schedule
    to the box ``[lower, upper]`` holding ``n_virtual`` (hypothetical,
    uniform) points at tree ``level``, splitting the largest extent at
    the proportional position each time.  Returns stacked corners of
    the synthesized level-1 pages.
    """
    out_lower: list[np.ndarray] = []
    out_upper: list[np.ndarray] = []
    stack = [(np.array(lower, dtype=np.float64), np.array(upper, dtype=np.float64),
              level, n_virtual)]
    while stack:
        lo, hi, lvl, n = stack.pop()
        if lvl == 1:
            out_lower.append(lo)
            out_upper.append(hi)
            continue
        child_cap = subtree_capacity(lvl - 1, topology.c_data, topology.c_dir)
        fanout = max(1, int(np.ceil(n / child_cap)))
        pending = [(lo, hi, n, fanout)]
        while pending:
            plo, phi, pn, pf = pending.pop()
            if pf == 1:
                stack.append((plo, phi, lvl - 1, pn))
                continue
            n_left, n_right = split_child_counts(pn, pf, child_cap)
            dim = int(np.argmax(phi - plo))
            cut = plo[dim] + (phi[dim] - plo[dim]) * (n_left / pn)
            left_hi = phi.copy()
            left_hi[dim] = cut
            right_lo = plo.copy()
            right_lo[dim] = cut
            f_left = pf // 2
            pending.append((right_lo, phi, n_right, pf - f_left))
            pending.append((plo, left_hi, n_left, f_left))
    return np.stack(out_lower), np.stack(out_upper)


@dataclass(frozen=True)
class CutoffModel:
    """Restricted-memory predictor using uniform lower-tree synthesis.

    ``memory`` is ``M``, the number of points that fit in memory.  If
    ``h_upper`` is ``None`` the error-minimizing heuristic of Section
    4.5.2 chooses it.  The cutoff method has no lower bound on
    ``h_upper`` (Section 4.5.1); any value in ``[2, height - 1]`` is
    accepted.
    """

    c_data: int
    c_dir: int
    memory: int
    h_upper: int | None = None
    config: BulkLoadConfig | None = None
    kernel: str | None = None

    def predict(
        self,
        file: PointFile,
        workload: KNNWorkload | RangeWorkload,
        rng: np.random.Generator,
        *,
        governor: "Governor | None" = None,
    ) -> PredictionResult:
        """Run Figure 5's algorithm against the paged dataset file.

        ``governor`` enables budget governance at the phase boundaries
        (query reads, scan, synthesis); checks charge nothing and draw
        no randomness, so an amply-budgeted governed run is
        bit-identical to an ungoverned one.
        """
        start_cost = file.disk.cost
        topology = Topology(file.n_points, self.c_data, self.c_dir)
        h_upper = self._resolve_h_upper(topology)

        if isinstance(workload, KNNWorkload):
            read_query_points(file, workload.query_ids)
        if governor is not None:
            governor.check("cutoff:read_query_points",
                           file.disk.cost - start_cost)
        n_sample = min(self.memory, file.n_points)
        if governor is not None:
            governor.admit_sample(n_sample, file.dim,
                                  phase="cutoff:scan_and_sample")
        sample = scan_and_sample(file, n_sample, rng)
        if governor is not None:
            governor.check("cutoff:scan_and_sample",
                           file.disk.cost - start_cost)
        upper = build_upper_tree(sample, topology, h_upper, config=self.config)

        leaf_lower: list[np.ndarray] = []
        leaf_upper: list[np.ndarray] = []
        for leaf in upper.leaves:
            if leaf.is_empty or leaf.virtual_n < 1:
                continue
            lo, hi = synthesize_uniform_leaves(
                leaf.lower, leaf.upper, upper.leaf_level, leaf.virtual_n, topology
            )
            leaf_lower.append(lo)
            leaf_upper.append(hi)
        if leaf_lower:
            geometry = LeafGeometry.from_corners(
                np.concatenate(leaf_lower), np.concatenate(leaf_upper)
            )
        else:
            geometry = LeafGeometry.empty(file.dim)

        if governor is not None:
            # Synthesis is free I/O, but a deadline can still pass here.
            governor.check("cutoff:synthesize",
                           file.disk.cost - start_cost)
        per_query = count_accesses(geometry, workload, kernel=self.kernel)
        return PredictionResult(
            per_query=per_query,
            io_cost=file.disk.cost - start_cost,
            detail={
                "h_upper": h_upper,
                "sigma_upper": upper.sigma_upper,
                "k_upper_leaves": upper.k,
                "n_predicted_leaves": geometry.k,
                "kernel": get_kernel(self.kernel).name,
            },
        )

    def _resolve_h_upper(self, topology: Topology) -> int:
        return resolve_h_upper(topology, self.h_upper, self.memory)
