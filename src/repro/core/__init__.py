"""The paper's contribution: sampling-based index cost prediction."""

from .compensation import (
    compensation_side_factor,
    compensation_volume_factor,
    grow_corners,
    grow_geometry,
    volume_shrinkage,
)
from .costmodel import AnalyticalCostModel
from .counting import PredictionResult, count_accesses
from .cutoff import CutoffModel
from .dynamic import DynamicMiniIndexModel, measure_dynamic_index
from .kdb_model import KDBMiniIndexModel
from .minindex import MiniIndexModel
from .phases import UpperTree, build_upper_tree
from .predictor import IndexCostPredictor
from .resampled import ResampledModel
from .spheres import SphereMiniIndexModel
from .topology import Topology, page_capacities

__all__ = [
    "compensation_side_factor",
    "compensation_volume_factor",
    "grow_corners",
    "grow_geometry",
    "volume_shrinkage",
    "AnalyticalCostModel",
    "PredictionResult",
    "count_accesses",
    "CutoffModel",
    "DynamicMiniIndexModel",
    "measure_dynamic_index",
    "KDBMiniIndexModel",
    "MiniIndexModel",
    "UpperTree",
    "build_upper_tree",
    "IndexCostPredictor",
    "ResampledModel",
    "SphereMiniIndexModel",
    "Topology",
    "page_capacities",
]
