"""Charged I/O steps shared by the phased predictors.

Both the cutoff and the resampled prediction algorithms (Figures 5
and 7) start the same way: read ``q`` query points at random positions
(Eq. 2), then scan the whole dataset once -- the scan simultaneously
determines the query spheres and collects the upper-tree sample of
``M`` points.  These helpers perform those steps against a
:class:`~repro.disk.pagefile.PointFile` so the seeks and transfers land
on the simulated disk.

Fault tolerance: every charged read below goes through the file's
:class:`~repro.disk.retry.RetryPolicy` (when one is attached), and the
scan issues one bounded ``read_range`` per chunk -- a transient read
fault is retried *at the failed chunk*, with backoff charged to the
ledger, instead of restarting the whole pass.  A fault that exhausts
the policy propagates as
:class:`~repro.errors.TransientReadError`; the facade's degradation
chain decides what happens next.
"""

from __future__ import annotations

import math

import numpy as np

from ..disk.pagefile import PointFile

__all__ = ["read_query_points", "scan_and_sample"]


def read_query_points(file: PointFile, query_ids: np.ndarray) -> np.ndarray:
    """Random single-point reads of the query points (Eq. 2).

    Each read is one seek plus one page transfer -- the prediction
    algorithm interleaves these reads with other work, so consecutive
    query points never find the head in place, exactly as Eq. 2 prices
    them: ``q * (t_seek + t_xfer)``.  A transient fault on one query
    point is retried (by ``file.read_point``) without re-reading the
    points already gathered.
    """
    rows = []
    for qid in np.asarray(query_ids):
        file.disk.drop_head()
        rows.append(file.read_point(int(qid)))
    file.disk.drop_head()
    return np.stack(rows) if rows else np.empty((0, file.dim))


def scan_and_sample(
    file: PointFile,
    n_sample: int,
    rng: np.random.Generator,
    *,
    chunk_points: int | None = None,
) -> np.ndarray:
    """One sequential pass over the file, returning a uniform sample.

    Charges ``t_seek + ceil(N / B) * t_xfer`` (``cost_ScanDataset``).
    The sample positions are drawn without replacement ahead of the scan
    and gathered as their pages stream by, exactly as an implementation
    over a real file would do.  The pass is driven chunk by chunk so a
    transient read fault costs (at most) one chunk's retries, never the
    chunks already consumed.
    """
    n = file.n_points
    if not 1 <= n_sample <= n:
        raise ValueError(f"sample size {n_sample} outside [1, {n}]")
    chosen = np.sort(rng.choice(n, size=n_sample, replace=False))
    chunk = chunk_points or max(file.points_per_page, 4096)
    chunk = max(1, math.ceil(chunk / file.points_per_page)) * file.points_per_page
    collected: list[np.ndarray] = []
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = file.read_range(start, stop)
        in_block = chosen[(chosen >= start) & (chosen < stop)]
        if in_block.size:
            collected.append(block[in_block - start])
    file.disk.drop_head()
    return np.concatenate(collected) if collected else np.empty((0, file.dim))
