"""Charged I/O steps shared by the phased predictors.

Both the cutoff and the resampled prediction algorithms (Figures 5
and 7) start the same way: read ``q`` query points at random positions
(Eq. 2), then scan the whole dataset once -- the scan simultaneously
determines the query spheres and collects the upper-tree sample of
``M`` points.  These helpers perform those steps against a
:class:`~repro.disk.pagefile.PointFile` so the seeks and transfers land
on the simulated disk.
"""

from __future__ import annotations

import numpy as np

from ..disk.pagefile import PointFile

__all__ = ["read_query_points", "scan_and_sample"]


def read_query_points(file: PointFile, query_ids: np.ndarray) -> np.ndarray:
    """Random single-point reads of the query points (Eq. 2).

    Each read is one seek plus one page transfer -- the prediction
    algorithm interleaves these reads with other work, so consecutive
    query points never find the head in place, exactly as Eq. 2 prices
    them: ``q * (t_seek + t_xfer)``.
    """
    rows = []
    for qid in np.asarray(query_ids):
        file.disk.drop_head()
        rows.append(file.read_point(int(qid)))
    file.disk.drop_head()
    return np.stack(rows) if rows else np.empty((0, file.dim))


def scan_and_sample(
    file: PointFile,
    n_sample: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One sequential pass over the file, returning a uniform sample.

    Charges ``t_seek + ceil(N / B) * t_xfer`` (``cost_ScanDataset``).
    The sample positions are drawn without replacement ahead of the scan
    and gathered as their pages stream by, exactly as an implementation
    over a real file would do.
    """
    n = file.n_points
    if not 1 <= n_sample <= n:
        raise ValueError(f"sample size {n_sample} outside [1, {n}]")
    chosen = np.sort(rng.choice(n, size=n_sample, replace=False))
    collected: list[np.ndarray] = []
    for start, block in file.scan():
        stop = start + block.shape[0]
        in_block = chosen[(chosen >= start) & (chosen < stop)]
        if in_block.size:
            collected.append(block[in_block - start])
    file.disk.drop_head()
    return np.concatenate(collected) if collected else np.empty((0, file.dim))
