"""Theorem 1: the page-shrinkage compensation factor.

A minimal bounding box over ``C`` uniform points shrinks when only a
``zeta`` fraction of the points is kept: the expected extent of ``n``
uniform points in ``[0, L]`` is ``L * (n - 1) / (n + 1)``, so reducing
``C`` points to ``C * zeta`` multiplies each side by
``((C*zeta - 1) (C + 1)) / ((C*zeta + 1) (C - 1))`` and the volume by
that quantity to the ``d``-th power -- which is exactly the paper's

    delta(C, zeta)^-1 = ( ((C*zeta - 1)(C + 1)) / ((C*zeta + 1)(C - 1)) )^d

To *compensate*, mini-index pages are grown by ``delta``: per side, the
reciprocal factor.  Uniformity is assumed only within a page, never
across the dataspace (Section 3.2, footnote 1).
"""

from __future__ import annotations

import numpy as np

from ..kernels.geometry import LeafGeometry

__all__ = [
    "volume_shrinkage",
    "compensation_volume_factor",
    "compensation_side_factor",
    "grow_corners",
    "grow_geometry",
]

_MIN_SAMPLED_POINTS = 1.0 + 1e-9


def _check(capacity: float, zeta: float) -> float:
    """Validate inputs; returns the expected sampled page occupancy."""
    if capacity <= 1:
        raise ValueError(f"page capacity must exceed 1 point, got {capacity}")
    if not 0 < zeta <= 1:
        raise ValueError(f"sampling fraction must be in (0, 1], got {zeta}")
    sampled = capacity * zeta
    if sampled <= _MIN_SAMPLED_POINTS:
        raise ValueError(
            f"C * zeta = {sampled:.3g} <= 1: a sampled page must expect more "
            f"than one point for its box to have volume (sample rate must "
            f"exceed 1/C, Section 3.3)"
        )
    return sampled


def compensation_side_factor(capacity: float, zeta: float) -> float:
    """Per-dimension growth factor undoing the sampling shrinkage.

    Always >= 1; equals 1 when ``zeta == 1``.  ``capacity`` is the
    (effective) page capacity ``C`` of the *full* index and ``zeta`` the
    sampling fraction.
    """
    sampled = _check(capacity, zeta)
    return ((capacity - 1.0) * (sampled + 1.0)) / ((capacity + 1.0) * (sampled - 1.0))


def compensation_volume_factor(capacity: float, zeta: float, dim: int) -> float:
    """``delta(C, zeta)``: the volume growth factor of Theorem 1."""
    if dim < 1:
        raise ValueError("dim must be >= 1")
    return compensation_side_factor(capacity, zeta) ** dim


def volume_shrinkage(capacity: float, zeta: float, dim: int) -> float:
    """``delta(C, zeta)^-1``: the volume *shrink* factor caused by
    sampling, exactly as printed in Theorem 1."""
    return 1.0 / compensation_volume_factor(capacity, zeta, dim)


def grow_corners(
    lower: np.ndarray, upper: np.ndarray, capacity: float, zeta: float
) -> tuple[np.ndarray, np.ndarray]:
    """Grow stacked ``(n, d)`` page corners by the compensation factor.

    Each box is scaled about its own center by the per-side factor; with
    ``zeta == 1`` the corners are returned unchanged.
    """
    factor = compensation_side_factor(capacity, zeta)
    center = (lower + upper) / 2.0
    half = (upper - lower) / 2.0 * factor
    return center - half, center + half


def grow_geometry(
    geometry: LeafGeometry, capacity: float, zeta: float
) -> LeafGeometry:
    """Grow a whole :class:`LeafGeometry` by the compensation factor.

    Vectorized over all pages at once; per-leaf occupancy counts are
    carried through unchanged (compensation rescales boxes, not
    contents).
    """
    return geometry.scaled(compensation_side_factor(capacity, zeta))
