"""Analytical I/O cost model: Equations 1-5 of the paper.

Closed-form (well, closed-recursion) seek/transfer counts for the three
approaches, used to produce Figures 9 and 10 and to cross-check the
measured costs of the simulated implementations:

* ``cost_OnDisk`` (Eq. 1) -- bulk loading the full index on disk, under
  the *best-case* assumption that every Hoare-find partition completes
  in a single pass (the paper notes measured costs on real data are
  5-10x higher, which our charged external builder reproduces);
* ``cost_Cutoff`` (Eq. 3) -- query-point reads plus one dataset scan;
* ``cost_Resampled`` (Eq. 5) -- the above plus the resampling pass
  (Eq. 4) and the lower-tree loads.

All functions return :class:`~repro.disk.accounting.IOCost`; price with
``.seconds(DiskParameters(...))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from ..disk.accounting import DiskParameters, IOCost
from .topology import (
    Topology,
    page_capacities,
    split_child_counts,
    subtree_capacity,
)

__all__ = [
    "cost_read_query_points",
    "cost_scan_dataset",
    "cost_resampling",
    "cost_build_lower_subtrees",
    "cost_cutoff",
    "cost_resampled",
    "cost_ondisk_build",
    "AnalyticalCostModel",
]


def cost_read_query_points(n_queries: int) -> IOCost:
    """Eq. 2: each query point is one random page read."""
    if n_queries < 0:
        raise ValueError("n_queries must be non-negative")
    return IOCost(seeks=n_queries, transfers=n_queries)


def cost_scan_dataset(n_points: int, points_per_page: int) -> IOCost:
    """One sequential pass: ``t_seek + ceil(N / B) * t_xfer``."""
    return IOCost(seeks=1, transfers=math.ceil(n_points / points_per_page))


def cost_resampling(
    n_points: int,
    memory: int,
    points_per_page: int,
    sigma_lower: float,
    k: int,
) -> IOCost:
    """Eq. 4: chunked second sampling pass plus distribution writes."""
    if sigma_lower <= 0:
        raise ValueError("sigma_lower must be positive")
    chunks = math.ceil(n_points * sigma_lower / memory)
    read_pages = math.ceil(memory / (points_per_page * sigma_lower))
    write_pages = math.ceil(memory / points_per_page)
    per_chunk = IOCost(seeks=1 + k, transfers=read_pages + write_pages)
    return per_chunk.scaled(chunks)


def cost_build_lower_subtrees(memory: int, points_per_page: int, k: int) -> IOCost:
    """Loading each of the ``k`` spill areas once: Section 4.4."""
    per_area = IOCost(seeks=1, transfers=math.ceil(memory / points_per_page))
    return per_area.scaled(k)


def cost_cutoff(n_points: int, points_per_page: int, n_queries: int) -> IOCost:
    """Eq. 3: ``cost_ReadQueryPoints + cost_ScanDataset``."""
    return cost_read_query_points(n_queries) + cost_scan_dataset(
        n_points, points_per_page
    )


def cost_resampled(
    n_points: int,
    memory: int,
    points_per_page: int,
    sigma_lower: float,
    k: int,
    n_queries: int,
) -> IOCost:
    """Eq. 5: the full resampled prediction pipeline."""
    return (
        cost_read_query_points(n_queries)
        + cost_scan_dataset(n_points, points_per_page)
        + cost_resampling(n_points, memory, points_per_page, sigma_lower, k)
        + cost_build_lower_subtrees(memory, points_per_page, k)
    )


def cost_ondisk_build(
    topology: Topology,
    memory: int,
    points_per_page: int,
    *,
    find_passes: float = 2.0,
) -> IOCost:
    """Eq. 1: the ``cost_BuildTreeLevel`` recursion for the external load.

    A region that fits in memory is read once, its whole subtree is
    built in memory, and it is written back once.  A larger region pays
    ``find_passes`` read+write passes per binary split -- Hoare's find
    streams the region through memory in ``ceil(m / M)`` chunks per
    pass, and partitioning interleaves reads with writes, so each chunk
    costs two seeks.  ``find_passes=1.0`` is the strict best case the
    paper's Eq. 1 assumes; the default of 2.0 is the textbook expected
    pass count of quickselect (each recursion halves the active region),
    which is what the charged simulation and the paper's measurements
    actually exhibit (Section 4.1 notes real data lands 5-10x above the
    best case).
    """
    if memory < 1:
        raise ValueError("memory must be positive")
    if find_passes < 1.0:
        raise ValueError("find_passes must be at least 1 (one full pass)")

    def region_pass(n: int, passes: float) -> IOCost:
        chunks = max(1, math.ceil(n / memory))
        pages = math.ceil(n / points_per_page)
        return IOCost(
            seeks=math.ceil(2 * chunks * passes),
            transfers=math.ceil(2 * pages * passes),
        )

    total = IOCost()
    # Iterative traversal over (level, subtree point count).
    stack = [(topology.height, topology.n_points)]
    while stack:
        level, n = stack.pop()
        if n <= memory or level == 1:
            total = total + region_pass(n, 1.0)
            continue
        child_cap = subtree_capacity(level - 1, topology.c_data, topology.c_dir)
        fanout = max(1, math.ceil(n / child_cap))
        splits: list[tuple[int, int]] = [(n, fanout)]
        while splits:
            m, f = splits.pop()
            if f == 1:
                stack.append((level - 1, m))
                continue
            total = total + region_pass(m, find_passes)
            n_left, n_right = split_child_counts(m, f, child_cap)
            f_left = f // 2
            splits.append((n_left, f_left))
            splits.append((n_right, f - f_left))
    return total


@dataclass(frozen=True)
class AnalyticalCostModel:
    """Convenience wrapper evaluating Eqs. 1-5 for a dataset shape.

    Derives page capacities and ``B`` from the disk parameters and the
    dimensionality, resolves ``h_upper`` with the Section 4.5.2
    heuristic, and prices costs in seconds -- everything Figures 9 and
    10 need.
    """

    disk: DiskParameters = field(default_factory=DiskParameters)
    n_queries: int = 500
    pointer_bytes: int = 4

    def _shape(self, n_points: int, dim: int) -> tuple[Topology, int]:
        c_data, c_dir = page_capacities(
            self.disk.page_bytes,
            dim,
            bytes_per_value=self.disk.bytes_per_value,
            pointer_bytes=self.pointer_bytes,
        )
        return _topology(n_points, c_data, c_dir), self.disk.points_per_page(dim)

    def ondisk(
        self, n_points: int, dim: int, memory: int, *, find_passes: float = 2.0
    ) -> IOCost:
        topology, b = self._shape(n_points, dim)
        return cost_ondisk_build(topology, memory, b, find_passes=find_passes)

    def cutoff(self, n_points: int, dim: int, memory: int) -> IOCost:
        _, b = self._shape(n_points, dim)
        return cost_cutoff(n_points, b, self.n_queries)

    def resampled(
        self, n_points: int, dim: int, memory: int, *, h_upper: int | None = None
    ) -> IOCost:
        topology, b = self._shape(n_points, dim)
        if h_upper is None:
            h_upper = topology.best_h_upper(memory)
        sigma_lower = topology.sigma_lower(h_upper, memory)
        k = topology.n_upper_leaves(h_upper)
        return cost_resampled(
            n_points, memory, b, sigma_lower, k, self.n_queries
        )

    def seconds(self, cost: IOCost) -> float:
        return cost.seconds(self.disk)


@lru_cache(maxsize=256)
def _topology(n_points: int, c_data: int, c_dir: int) -> Topology:
    """Topologies are immutable and expensive to enumerate; cache them."""
    return Topology(n_points=n_points, c_data=c_data, c_dir=c_dir)
