"""Phase splitting: the upper tree of the restricted-memory predictors.

Under a memory budget of ``M`` points, the mini-index is built in
phases (Section 4.2): a single *upper tree* on a sample of ``M`` points
covering levels ``height .. height - h_upper + 1`` of the full index,
and one *lower tree* per upper-tree leaf page, constructed afterwards by
either the cutoff or the resampled method.  This module builds the
upper tree, applies Theorem 1's compensation to its leaf pages, and
exposes the per-leaf data (grown box, sample points, full-data point
quota) the lower-tree constructions consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.geometry import LeafGeometry
from ..rtree.bulkload import BulkLoadConfig, build_tree
from ..rtree.node import LeafNode
from .compensation import compensation_side_factor
from .topology import Topology

__all__ = ["UpperLeaf", "UpperTree", "build_upper_tree", "resolve_h_upper"]


def resolve_h_upper(topology: Topology, h_upper: int | None, memory: int) -> int:
    """The upper-tree height a phased predictor should use.

    An explicit ``h_upper`` is validated against ``[2, height - 1]``
    (the phased regime of Section 4.5).  Otherwise the Section 4.5.2
    heuristic chooses it, degrading gracefully at the edges: a tree too
    short to phase (height < 3) or a memory budget covering the whole
    dataset collapses to ``h_upper == height`` -- the single-phase
    mini-index of Section 3 -- and a budget too tight for the
    feasibility bounds falls back to the shallowest phased tree.
    """
    if h_upper is not None:
        if not 2 <= h_upper <= topology.height - 1:
            raise ValueError(
                f"h_upper {h_upper} outside [2, {topology.height - 1}]"
            )
        return h_upper
    if topology.height < 3 or memory >= topology.n_points:
        return topology.height
    try:
        return topology.best_h_upper(memory)
    except ValueError:
        return 2


@dataclass
class UpperLeaf:
    """One leaf page of the upper tree, after compensation growth.

    ``lower``/``upper`` are the grown corners; ``sample_ids`` index into
    the upper-tree sample; ``virtual_n`` is the number of *full-dataset*
    points the corresponding subtree of the on-disk index would hold.
    Empty leaves (no sample point fell into their quota) have
    ``lower is None``.
    """

    lower: np.ndarray | None
    upper: np.ndarray | None
    sample_ids: np.ndarray
    virtual_n: int

    @property
    def is_empty(self) -> bool:
        return self.lower is None


@dataclass
class UpperTree:
    """The built upper tree: grown leaves plus the parameters used."""

    leaves: list[UpperLeaf]
    sample: np.ndarray
    topology: Topology
    h_upper: int
    sigma_upper: float
    growth_factor: float

    @property
    def leaf_level(self) -> int:
        return self.topology.upper_leaf_level(self.h_upper)

    @property
    def k(self) -> int:
        """Number of upper-tree leaf pages (the paper's ``k``)."""
        return len(self.leaves)

    def grown_corners(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked corners of the non-empty grown leaves."""
        return self.geometry().corners

    def geometry(self) -> LeafGeometry:
        """The non-empty grown leaves as a counting-kernel geometry.

        ``n_points`` is each leaf's sample occupancy and ``virtual_n``
        its full-dataset point quota -- the quantities the lower-tree
        constructions budget with.
        """
        live = [leaf for leaf in self.leaves if not leaf.is_empty]
        if not live:
            return LeafGeometry.empty(int(self.sample.shape[1]))
        return LeafGeometry(
            np.stack([leaf.lower for leaf in live]),
            np.stack([leaf.upper for leaf in live]),
            np.array([leaf.sample_ids.shape[0] for leaf in live], dtype=np.int64),
            np.array([leaf.virtual_n for leaf in live], dtype=np.int64),
        )


def build_upper_tree(
    sample: np.ndarray,
    topology: Topology,
    h_upper: int,
    *,
    config: BulkLoadConfig | None = None,
) -> UpperTree:
    """Build the upper tree on ``sample`` and grow its leaf pages.

    The sample's size relative to ``topology.n_points`` defines
    ``sigma_upper``; leaves are grown by
    ``delta(pts(height - h_upper + 1), sigma_upper)`` as in Section 4.2.
    """
    sample = np.asarray(sample, dtype=np.float64)
    if not 1 <= h_upper <= topology.height:
        raise ValueError(f"h_upper {h_upper} outside [1, {topology.height}]")
    sigma_upper = min(sample.shape[0] / topology.n_points, 1.0)
    leaf_level = topology.upper_leaf_level(h_upper)
    root = build_tree(sample, topology, config, stop_level=leaf_level)

    page_points = topology.pts(leaf_level)
    if sigma_upper >= 1.0:
        factor = 1.0
    else:
        try:
            factor = compensation_side_factor(page_points, sigma_upper)
        except ValueError:
            # Sampled pages expect <= 1 point: Theorem 1 is undefined
            # below a 1/C sampling rate (Section 3.3); fall back to the
            # raw sampled geometry rather than failing the prediction.
            factor = 1.0

    leaves: list[UpperLeaf] = []
    for node in root.iter_leaves():
        assert isinstance(node, LeafNode)
        if node.mbr is None:
            leaves.append(
                UpperLeaf(None, None, node.point_ids, node.virtual_n)
            )
            continue
        grown = node.mbr.grown(factor)
        leaves.append(
            UpperLeaf(grown.lower, grown.upper, node.point_ids, node.virtual_n)
        )
    return UpperTree(
        leaves=leaves,
        sample=sample,
        topology=topology,
        h_upper=h_upper,
        sigma_upper=sigma_upper,
        growth_factor=factor,
    )
