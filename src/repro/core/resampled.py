"""The resampled index tree predictor (Section 4.4).

The most accurate restricted-memory method: after the upper tree is
built on ``M`` sample points and its ``k`` leaf pages are grown, a
second pass over the dataset draws ``k * M`` fresh sample points
(``sigma_lower = min(k * M / N, 1)``) and distributes each to an upper
leaf page -- into the page that contains it, else into the nearest page
by Euclidean box distance, growing that page (Figure 6).  Points bound
for the same page are spilled to one of ``k`` consecutive disk areas so
each lower tree can later be built with the *whole* memory (Figure 8).
Every lower tree is then bulk loaded in memory on its resampled points
with the full index's subtree structure, and the query spheres are
intersected with the resulting leaf pages.

I/O charged on the simulated disk reproduces Eq. 5:
``cost_ReadQueryPoints + cost_ScanDataset + cost_Resampling +
cost_BuildLowerSubtrees``.

Crash consistency: :meth:`ResampledModel.predict` accepts a mutable
``checkpoint`` dict.  When provided, the prediction records its
progress at phase and chunk boundaries -- the collected sample with the
RNG state after drawing it, per-chunk spill progress (area lengths,
per-area counts, grown boxes, RNG state), and per-leaf lower-build
results -- each boundary paying a one-page charged checkpoint write.
A run killed by :class:`~repro.errors.CrashPoint` can then be resumed
by calling ``predict`` again with the *same file and checkpoint* and a
fresh generator seeded identically: completed phases are skipped, a
partially applied spill chunk is rolled back (areas truncated to their
checkpointed lengths, boxes and counters restored) and replayed from
the checkpointed RNG state, and the result is bit-identical to the
fault-free prediction.  Without a checkpoint the code path is
byte-for-byte the PR 1 behavior -- zero overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..disk.pagefile import PointFile
from ..errors import TornWriteError, TransientReadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.governor import Governor
from ..kernels.geometry import LeafGeometry
from ..kernels.registry import get_kernel
from ..rtree.bulkload import BulkLoadConfig, build_subtree
from ..workload.queries import KNNWorkload, RangeWorkload
from .compensation import compensation_side_factor, grow_geometry
from .counting import PredictionResult, count_accesses
from .phases import UpperTree, build_upper_tree, resolve_h_upper
from .sampling_io import read_query_points, scan_and_sample
from .topology import Topology

__all__ = ["ResampledModel"]

_ASSIGN_BLOCK = 4096  # points assigned to boxes per vectorized block


@dataclass(frozen=True)
class ResampledModel:
    """Restricted-memory predictor that resamples per lower tree.

    ``memory`` is ``M`` (points that fit in memory).  ``h_upper`` of
    ``None`` selects the Section 4.5.2 heuristic: the tallest feasible
    upper tree whose lower trees have an unsampled size closest to
    ``M`` (equivalently, ``sigma_lower`` just reaching 1).
    """

    c_data: int
    c_dir: int
    memory: int
    h_upper: int | None = None
    config: BulkLoadConfig | None = None
    overflow_policy: str = "reservoir"
    #: bucket-level resumes allowed across the spill phase after the
    #: file's per-access retry policy is exhausted (fault tolerance)
    spill_resume_attempts: int = 3
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.overflow_policy not in ("reservoir", "discard"):
            raise ValueError(
                f"unknown overflow_policy {self.overflow_policy!r}"
            )
        if self.spill_resume_attempts < 0:
            raise ValueError("spill_resume_attempts must be non-negative")

    def predict(
        self,
        file: PointFile,
        workload: KNNWorkload | RangeWorkload,
        rng: np.random.Generator,
        *,
        checkpoint: dict | None = None,
        governor: "Governor | None" = None,
    ) -> PredictionResult:
        """Run Figure 7's algorithm against the paged dataset file.

        ``checkpoint`` (a mutable dict owned by the caller) enables
        crash resume: pass the same dict to a repeated call after a
        :class:`~repro.errors.CrashPoint` -- with the same ``file`` and
        an identically seeded ``rng`` -- and the prediction continues
        from the last completed boundary instead of restarting,
        returning the same estimate the uninterrupted run would have.

        ``governor`` enables budget governance: spend is checked at the
        same phase/chunk/leaf boundaries the checkpoints use, and a
        crossed limit raises :class:`~repro.errors.BudgetExceededError`
        / :class:`~repro.errors.DeadlineExceededError` so the facade
        can downgrade mid-flight.  Checks read the ledger and the
        monotonic clock only -- no extra I/O, no RNG draws -- so a
        governed run with an ample budget is bit-identical to this
        method ungoverned, with an identical ledger.
        """
        ck = checkpoint
        start_cost = file.disk.cost
        n = file.n_points
        topology = Topology(n, self.c_data, self.c_dir)
        h_upper = self._resolve_h_upper(topology)

        # Steps 2-3: query points, then one scan for spheres + sample.
        if isinstance(workload, KNNWorkload) and not (
            ck is not None and ck.get("queries_read")
        ):
            read_query_points(file, workload.query_ids)
            if ck is not None:
                self._ckpt_charge(file, ck)
                ck["queries_read"] = True
        if governor is not None:
            governor.check("resampled:read_query_points",
                           file.disk.cost - start_cost)
        if ck is not None and "sample" in ck:
            sample = ck["sample"]
            rng.bit_generator.state = ck["rng_after_sample"]
        else:
            if governor is not None:
                governor.admit_sample(min(self.memory, n), file.dim,
                                      phase="resampled:scan_and_sample")
            sample = scan_and_sample(file, min(self.memory, n), rng)
            if ck is not None:
                self._ckpt_charge(file, ck)
                ck["sample"] = sample
                ck["rng_after_sample"] = rng.bit_generator.state
        if governor is not None:
            governor.check("resampled:scan_and_sample",
                           file.disk.cost - start_cost)

        # Step 5: upper tree with grown leaf pages.
        upper = build_upper_tree(sample, topology, h_upper, config=self.config)

        if upper.leaf_level == 1:
            # Degenerate single-phase case (tree too short to phase, or
            # the whole dataset fits in memory): the upper-tree leaves
            # already are the compensated data pages.
            geometry = upper.geometry()
            per_query = self._count(geometry, workload)
            return PredictionResult(
                per_query=per_query,
                io_cost=file.disk.cost - start_cost,
                detail={
                    "h_upper": h_upper,
                    "sigma_upper": upper.sigma_upper,
                    "sigma_lower": 1.0,
                    "k_upper_leaves": upper.k,
                    "n_predicted_leaves": geometry.k,
                    "n_discarded_overflow": 0,
                    "leaf_growth_factor": upper.growth_factor,
                    "kernel": get_kernel(self.kernel).name,
                },
            )

        sigma_lower = topology.sigma_lower(h_upper, self.memory)

        # Steps 6-7: resampling pass into k consecutive spill areas.
        (
            areas, boxes_lower, boxes_upper, area_of_leaf,
            n_discarded, n_spill_resumes,
        ) = self._resample_into_areas(file, upper, sigma_lower, rng, ck,
                                      governor=governor,
                                      start_cost=start_cost)

        # Steps 8-10: build each lower tree in memory on its area.
        leaf_lower: list[np.ndarray] = []
        leaf_upper: list[np.ndarray] = []
        first_leaf = 0
        if ck is not None:
            lower_state = ck.setdefault(
                "lower", {"done": 0, "leaf_lower": [], "leaf_upper": []}
            )
            first_leaf = lower_state["done"]
            leaf_lower = list(lower_state["leaf_lower"])
            leaf_upper = list(lower_state["leaf_upper"])
        for leaf_idx, leaf in enumerate(upper.leaves):
            if leaf_idx < first_leaf:
                continue
            area_idx = area_of_leaf[leaf_idx]
            built = area_idx is not None and areas[area_idx].n_points > 0
            if built:
                area = areas[area_idx]
                points = area.read_all()
                ids = np.arange(points.shape[0], dtype=np.int64)
                root = build_subtree(
                    points, ids, upper.leaf_level, leaf.virtual_n, topology,
                    self.config,
                )
                for node in root.iter_leaves():
                    if node.mbr is not None:
                        leaf_lower.append(node.mbr.lower)
                        leaf_upper.append(node.mbr.upper)
            if ck is not None:
                if built:
                    # Skipping an empty leaf is free and idempotent; only
                    # a leaf that cost charged reads earns a checkpoint
                    # write.
                    self._ckpt_charge(file, ck)
                ck["lower"] = {
                    "done": leaf_idx + 1,
                    "leaf_lower": list(leaf_lower),
                    "leaf_upper": list(leaf_upper),
                }
            if governor is not None and built:
                governor.check("resampled:build_lower",
                               file.disk.cost - start_cost)
        file.disk.drop_head()

        if leaf_lower:
            geometry = LeafGeometry.from_corners(
                np.stack(leaf_lower), np.stack(leaf_upper)
            )
        else:
            geometry = LeafGeometry.empty(file.dim)

        # Compensate the lower-tree leaves when they too were sampled.
        page_points = topology.pts(1)
        if sigma_lower < 1.0 and page_points * sigma_lower > 1.0:
            geometry = grow_geometry(geometry, page_points, sigma_lower)
            leaf_growth = compensation_side_factor(page_points, sigma_lower)
        else:
            leaf_growth = 1.0

        per_query = self._count(geometry, workload)
        return PredictionResult(
            per_query=per_query,
            io_cost=file.disk.cost - start_cost,
            detail={
                "h_upper": h_upper,
                "sigma_upper": upper.sigma_upper,
                "sigma_lower": sigma_lower,
                "k_upper_leaves": upper.k,
                "n_predicted_leaves": geometry.k,
                "n_discarded_overflow": n_discarded,
                "n_spill_resumes": n_spill_resumes,
                "leaf_growth_factor": leaf_growth,
                "kernel": get_kernel(self.kernel).name,
            },
        )

    # ------------------------------------------------------------------

    def _resolve_h_upper(self, topology: Topology) -> int:
        return resolve_h_upper(topology, self.h_upper, self.memory)

    def _count(
        self,
        geometry: LeafGeometry,
        workload: KNNWorkload | RangeWorkload,
    ) -> np.ndarray:
        return count_accesses(geometry, workload, kernel=self.kernel)

    @staticmethod
    def _ckpt_charge(file: PointFile, ck: dict) -> None:
        """One charged single-page checkpoint write.

        Single-page writes are atomic on the fault layer, so a
        checkpoint record is never torn; a crash *during* the charge
        simply leaves the previous checkpoint in force and the
        interrupted unit is redone on resume.  The charge lands before
        the caller mutates the checkpoint dict -- the same
        charge-before-state discipline every durable step follows.
        """
        page = ck.get("_page")
        if page is None:
            page = file.disk.allocate(1)
            ck["_page"] = page
        file.disk.drop_head()
        file.charged(lambda: file.disk.write(page, 1))

    def _resample_into_areas(
        self,
        file: PointFile,
        upper: UpperTree,
        sigma_lower: float,
        rng: np.random.Generator,
        ck: dict | None = None,
        *,
        governor: "Governor | None" = None,
        start_cost=None,
    ) -> tuple[
        list[PointFile], np.ndarray, np.ndarray, list[int | None], int, int
    ]:
        """Second sampling pass: distribute new sample points to areas.

        Returns the spill areas, the (mutable, possibly grown) box
        corner arrays, the leaf-index -> area-index map (``None`` for
        upper leaves that had no box), the overflow-discard count, and
        the number of bucket-level fault resumes spent.

        Fault tolerance: each bucket's spill is checkpointed by how
        many of its group points have durably landed.  A transient
        fault that survives the per-access retry policy resumes *that
        bucket at its checkpoint* -- the chunk already read from the
        dataset stays in memory, so the scan never restarts.  After
        ``spill_resume_attempts`` bucket resumes the fault propagates
        and the facade degrades to the cutoff method.

        Crash tolerance (``ck`` provided): progress is checkpointed per
        *chunk* -- area lengths, per-area stream counts, grown boxes,
        and the RNG state -- and a resumed call first rolls the areas
        back to the checkpointed lengths (truncating the partially
        applied chunk) before replaying from the checkpointed RNG
        state, so no point is ever spilled twice and reservoir draws
        replay bit-identically.
        """
        n = file.n_points
        dim = file.dim
        if ck is not None and "spill" in ck:
            st = ck["spill"]
            area_of_leaf = st["area_of_leaf"]
            areas = st["areas"]
            if st["n_boxes"] == 0:
                return ([], np.empty((0, dim)), np.empty((0, dim)),
                        area_of_leaf, 0, 0)
            if st["done"]:
                return (areas, st["box_lower"], st["box_upper"], area_of_leaf,
                        st["n_discarded"], st["n_resumes"])
            # Roll back the partially applied chunk, then replay it.
            for area, size in zip(areas, st["area_sizes"]):
                area.truncate(size)
            box_lower = st["box_lower"].copy()
            box_upper = st["box_upper"].copy()
            seen_per_area = st["seen"].copy()
            chosen = st["chosen"]
            n_resumes = st["n_resumes"]
            resume_start = st["next_start"]
            rng.bit_generator.state = st["rng_state"]
        else:
            # One spill area per non-empty upper leaf, allocated
            # consecutively so each later read is one seek + a streak.
            area_of_leaf = []
            boxes_lo: list[np.ndarray] = []
            boxes_hi: list[np.ndarray] = []
            for leaf in upper.leaves:
                if leaf.is_empty:
                    area_of_leaf.append(None)
                else:
                    area_of_leaf.append(len(boxes_lo))
                    boxes_lo.append(leaf.lower)
                    boxes_hi.append(leaf.upper)
            n_boxes = len(boxes_lo)
            if n_boxes == 0:
                if ck is not None:
                    ck["spill"] = {
                        "n_boxes": 0, "areas": [],
                        "area_of_leaf": area_of_leaf, "done": True,
                    }
                return ([], np.empty((0, dim)), np.empty((0, dim)),
                        area_of_leaf, 0, 0)
            box_lower = np.stack(boxes_lo)
            box_upper = np.stack(boxes_hi)
            areas = [
                PointFile(file.disk, dim, self.memory, retry=file.retry,
                          verify_checksums=file.verify_checksums,
                          breaker=file.breaker,
                          redundancy=file.redundancy_policy)
                for _ in range(n_boxes)
            ]
            n_resample = min(n, round(n * sigma_lower))
            chosen = np.sort(rng.choice(n, size=n_resample, replace=False))
            seen_per_area = np.zeros(n_boxes, dtype=np.int64)
            n_resumes = 0
            resume_start = 0
            if ck is not None:
                self._ckpt_charge(file, ck)
                ck["spill"] = self._spill_state(
                    areas, area_of_leaf, box_lower, box_upper, seen_per_area,
                    chosen, n_resumes, 0, rng,
                )

        # Chunks sized so each holds about M sample points (Figure 8a),
        # page-aligned exactly as PointFile.scan aligns them.
        chunk = min(n, math.ceil(self.memory / max(sigma_lower, 1e-12)))
        chunk = max(1, math.ceil(chunk / file.points_per_page)) * file.points_per_page
        for start in range(resume_start, n, chunk):
            stop = min(start + chunk, n)
            block = file.read_range(start, stop)
            in_block = chosen[(chosen >= start) & (chosen < stop)]
            if in_block.size > 0:
                pts = block[in_block - start]
                assignment = _assign_to_boxes(pts, box_lower, box_upper)
                # Distribute groups (Figure 8b): one streak write per area.
                for box_idx in np.unique(assignment):
                    group = pts[assignment == box_idx]
                    checkpoint = {"consumed": 0}  # per-bucket progress
                    while True:
                        try:
                            self._spill(areas[box_idx], group,
                                        int(seen_per_area[box_idx]), rng,
                                        checkpoint)
                            break
                        except (TransientReadError, TornWriteError):
                            if n_resumes >= self.spill_resume_attempts:
                                raise
                            n_resumes += 1
                            file.disk.drop_head()
                    seen_per_area[box_idx] += group.shape[0]
                    # Grow the box to cover its new points (Figure 6b).
                    box_lower[box_idx] = np.minimum(
                        box_lower[box_idx], group.min(axis=0)
                    )
                    box_upper[box_idx] = np.maximum(
                        box_upper[box_idx], group.max(axis=0)
                    )
            file.disk.drop_head()  # the next chunk read pays its seek
            if ck is not None:
                self._ckpt_charge(file, ck)
                ck["spill"] = self._spill_state(
                    areas, area_of_leaf, box_lower, box_upper, seen_per_area,
                    chosen, n_resumes, stop, rng,
                )
            if governor is not None:
                # Same boundary the crash checkpoint uses: the chunk is
                # fully applied, so a downgrade here abandons no work.
                governor.check("resampled:spill",
                               file.disk.cost - start_cost)
        n_discarded = int(
            np.maximum(seen_per_area - self.memory, 0).sum()
        )
        if ck is not None:
            ck["spill"].update(
                done=True, n_discarded=n_discarded, n_resumes=n_resumes,
                box_lower=box_lower, box_upper=box_upper,
            )
        return (areas, box_lower, box_upper, area_of_leaf,
                n_discarded, n_resumes)

    @staticmethod
    def _spill_state(
        areas: list[PointFile],
        area_of_leaf: list[int | None],
        box_lower: np.ndarray,
        box_upper: np.ndarray,
        seen_per_area: np.ndarray,
        chosen: np.ndarray,
        n_resumes: int,
        next_start: int,
        rng: np.random.Generator,
    ) -> dict:
        """Deep-copied chunk-boundary snapshot of the spill phase."""
        return {
            "n_boxes": len(areas),
            "areas": areas,
            "area_of_leaf": area_of_leaf,
            "area_sizes": [a.n_points for a in areas],
            "box_lower": box_lower.copy(),
            "box_upper": box_upper.copy(),
            "seen": seen_per_area.copy(),
            "chosen": chosen,
            "n_resumes": n_resumes,
            "next_start": next_start,
            "rng_state": rng.bit_generator.state,
            "done": False,
        }

    def _spill(
        self,
        area: PointFile,
        group: np.ndarray,
        seen_before: int,
        rng: np.random.Generator,
        checkpoint: dict | None = None,
    ) -> None:
        """Write a group to its spill area, capping at capacity ``M``.

        ``overflow_policy="discard"`` drops the excess, as the paper's
        implementation does (footnote 5) -- which biases a full area
        toward the file's scan order.  The default ``"reservoir"``
        policy instead keeps a uniform sample of everything streamed to
        the area (classic reservoir sampling): same space bound, no
        order bias, markedly better lower trees for dense areas.

        ``checkpoint["consumed"]`` counts the group points durably
        handled so far; every charged write happens *before* the
        corresponding in-memory state changes, so re-entering after a
        fault resumes exactly where the bucket left off, with no
        duplicated appends.
        """
        state = checkpoint if checkpoint is not None else {"consumed": 0}
        total = group.shape[0]
        while state["consumed"] < total:
            done = state["consumed"]
            room = area.capacity - area.n_points
            if room > 0:
                take = min(room, total - done)
                # append -> write_range charges before the buffer moves,
                # so a torn write here leaves `consumed` untouched.
                area.append(group[done : done + take])
                state["consumed"] = done + take
                continue
            rest = group[done:]
            if self.overflow_policy == "discard":
                state["consumed"] = total
                return
            # Reservoir replacement: stream position s (0-based) is kept
            # with probability capacity / (s + 1), overwriting a random
            # slot.
            positions = seen_before + done + np.arange(rest.shape[0])
            slots = rng.integers(0, positions + 1)
            accept = slots < area.capacity
            if not np.any(accept):
                state["consumed"] = total
                return
            kept_slots = slots[accept]
            kept_points = rest[accept]
            # Replacements are in-place page writes within the area: one
            # seek to the area plus the touched pages, batched per group.
            # Charge first (under the retry policy); only then mutate the
            # buffer, so a failed write leaves the area resumable.
            pages = math.ceil(kept_slots.shape[0] / area.points_per_page)
            area.disk.drop_head()
            n_pages = min(pages, area.n_pages)
            area.charged(lambda: area.disk.write(area.start_page, n_pages))
            for slot, point in zip(kept_slots.tolist(), kept_points):
                area.place(int(slot), point[np.newaxis, :])
            state["consumed"] = total


def _assign_to_boxes(
    points: np.ndarray, box_lower: np.ndarray, box_upper: np.ndarray
) -> np.ndarray:
    """Index of the containing box, else the nearest box, per point."""
    n = points.shape[0]
    assignment = np.empty(n, dtype=np.int64)
    for start in range(0, n, _ASSIGN_BLOCK):
        block = points[start : start + _ASSIGN_BLOCK]
        best_dist = np.full(block.shape[0], np.inf)
        best_idx = np.zeros(block.shape[0], dtype=np.int64)
        for j in range(box_lower.shape[0]):
            below = np.maximum(box_lower[j] - block, 0.0)
            above = np.maximum(block - box_upper[j], 0.0)
            gap = below + above
            dist = np.einsum("nd,nd->n", gap, gap)
            better = dist < best_dist
            best_dist[better] = dist[better]
            best_idx[better] = j
        assignment[start : start + block.shape[0]] = best_idx
    return assignment
