"""Mini-index prediction for space-partitioning indexes (k-d-B-tree).

The Section 3 recipe for a page geometry that needs *no* compensation:
a k-d-B-tree's page boundaries are median split planes, and a sample's
medians converge to the data's medians, so the mini tree's pages are
unbiased estimates of the full tree's pages at any sampling fraction
above the trivial floor.  The contrast with the R-tree (whose MBRs
shrink under sampling, Theorem 1) is demonstrated in the structure-
comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.registry import get_kernel
from ..rtree.kdb import KDBTree
from ..workload.queries import KNNWorkload, RangeWorkload
from .counting import PredictionResult, count_accesses

__all__ = ["KDBMiniIndexModel"]


@dataclass(frozen=True)
class KDBMiniIndexModel:
    """Sampling predictor for k-d-B-tree page accesses."""

    c_data: int
    kernel: str | None = None

    def predict(
        self,
        points: np.ndarray,
        workload: KNNWorkload | RangeWorkload,
        sampling_fraction: float,
        rng: np.random.Generator,
    ) -> PredictionResult:
        points = np.asarray(points, dtype=np.float64)
        n = points.shape[0]
        if not 0 < sampling_fraction <= 1:
            raise ValueError("sampling_fraction must be in (0, 1]")
        n_sample = max(1, round(n * sampling_fraction))
        if n_sample < n:
            sample = points[rng.choice(n, size=n_sample, replace=False)]
        else:
            sample = points
        # The mini tree must carve the *full* dataspace, which the
        # sample's own bounding box underestimates slightly; computing
        # the data's bounds costs the same full scan that determines
        # the query spheres.
        mini = KDBTree.bulk_load(
            sample,
            self.c_data,
            virtual_n=n,
            region=(points.min(axis=0), points.max(axis=0)),
        )
        per_query = count_accesses(
            mini.leaf_geometry, workload, kernel=self.kernel
        )
        return PredictionResult(
            per_query=per_query,
            detail={
                "zeta": sample.shape[0] / n,
                "n_mini_leaves": int(mini.n_leaves),
                "kernel": get_kernel(self.kernel).name,
            },
        )
