"""Mini-index prediction for sphere-page indexes (SS-tree family).

The Section 3 recipe transplanted to a different page geometry: build
a mini SS-tree on the sample with the full index's topology imposed,
grow every leaf *sphere* by the spherical compensation factor (see
:func:`repro.rtree.sstree.sphere_radius_compensation`), and count
query-sphere/leaf-sphere intersections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rtree.bulkload import BulkLoadConfig
from ..rtree.sstree import (
    SSTree,
    count_sphere_sphere,
    sphere_radius_compensation,
)
from ..workload.queries import KNNWorkload
from .counting import PredictionResult

__all__ = ["SphereMiniIndexModel"]

_BOOTSTRAP_ROUNDS = 8
_MIN_LEAF_MEMBERS = 4


def _bootstrap_growth(
    mini: SSTree,
    sample: np.ndarray,
    zeta: float,
    rng: np.random.Generator,
) -> float:
    """Data-driven radius compensation via Aitken extrapolation.

    The expected max-distance radius ``R(n)`` of ``n`` draws from a
    page's member distribution approaches a limit with geometrically
    shrinking increments.  Per mini leaf we measure ``R`` at three
    geometrically spaced sizes -- ``m * zeta`` and ``m * sqrt(zeta)``
    by bootstrap, ``m`` exactly -- apply Aitken's delta-squared to
    estimate the limit, and step the geometric progression two more
    sqrt(zeta) rungs up to the full page size ``m / zeta``.  No
    distributional assumption beyond the geometric convergence of
    extreme values.
    """
    ratios: list[float] = []
    for leaf in mini.leaves:
        if leaf.mbr is None or leaf.n_points < _MIN_LEAF_MEMBERS:
            continue
        members = sample[leaf.point_ids]
        radius_m = leaf.mbr.radius  # type: ignore[union-attr]
        if radius_m <= 0:
            continue
        m = leaf.n_points
        n_low = max(2, round(m * zeta))
        n_mid = max(n_low + 1, round(m * np.sqrt(zeta)))
        if n_mid >= m:
            continue
        radius_low = _mean_subsample_radius(members, n_low, rng)
        radius_mid = _mean_subsample_radius(members, n_mid, rng)
        # Aitken delta-squared limit of the sequence (low, mid, m).
        denominator = radius_low + radius_m - 2.0 * radius_mid
        if abs(denominator) < 1e-12:
            continue
        limit = (radius_low * radius_m - radius_mid**2) / denominator
        spread_mid = limit - radius_mid
        spread_m = limit - radius_m
        if limit <= radius_m or spread_mid <= 0 or spread_m <= 0:
            # Non-contracting sequence (noise); fall back to no growth.
            continue
        rate = spread_m / spread_mid  # contraction per sqrt(zeta) rung
        predicted_full = limit - spread_m * rate**2
        if predicted_full > radius_m:
            ratios.append(predicted_full / radius_m)
    return float(np.mean(ratios)) if ratios else 1.0


def _mean_subsample_radius(
    members: np.ndarray, size: int, rng: np.random.Generator
) -> float:
    radii = []
    for _ in range(_BOOTSTRAP_ROUNDS):
        picked = members[rng.choice(members.shape[0], size, replace=False)]
        center = picked.mean(axis=0)
        radii.append(float(np.linalg.norm(picked - center, axis=1).max()))
    return float(np.mean(radii))


@dataclass(frozen=True)
class SphereMiniIndexModel:
    """Sampling predictor for SS-tree leaf accesses.

    ``calibration`` selects the radius compensation:

    * ``"uniform"`` -- the closed-form uniform-ball law.  Honest but
      weak on clustered data: a cluster's radius is set by its extreme
      members, which sampling removes more aggressively than the
      uniform law assumes.
    * ``"bootstrap"`` (default) -- estimate the shrinkage from the
      sample itself: re-subsample each mini leaf's members at the same
      fraction ``zeta`` and measure how much its radius shrinks; the
      inverse of that one-step ratio extrapolates the mini radius up to
      the full page.  No distributional assumption -- the same
      philosophy that makes the paper prefer sampling over parametric
      models.
    """

    c_data: int
    c_dir: int
    compensate: bool = True
    calibration: str = "bootstrap"
    config: BulkLoadConfig | None = None

    def __post_init__(self) -> None:
        if self.calibration not in ("uniform", "bootstrap"):
            raise ValueError(f"unknown calibration {self.calibration!r}")

    def predict(
        self,
        points: np.ndarray,
        workload: KNNWorkload,
        sampling_fraction: float,
        rng: np.random.Generator,
    ) -> PredictionResult:
        points = np.asarray(points, dtype=np.float64)
        n = points.shape[0]
        if not 0 < sampling_fraction <= 1:
            raise ValueError("sampling_fraction must be in (0, 1]")
        n_sample = max(1, round(n * sampling_fraction))
        if n_sample < n:
            sample = points[rng.choice(n, size=n_sample, replace=False)]
        else:
            sample = points
        zeta = sample.shape[0] / n

        mini = SSTree.bulk_load(
            sample, self.c_data, self.c_dir, virtual_n=n, config=self.config
        )
        factor = 1.0
        if self.compensate and zeta < 1.0:
            if self.calibration == "bootstrap":
                factor = _bootstrap_growth(mini, sample, zeta, rng)
            else:
                try:
                    factor = sphere_radius_compensation(
                        mini.topology.c_eff_data, zeta, points.shape[1]
                    )
                except ValueError:
                    factor = 1.0
        centers, radii = mini.grown_leaf_spheres(factor)
        per_query = count_sphere_sphere(
            workload.queries, workload.radii, centers, radii
        )
        return PredictionResult(
            per_query=per_query,
            detail={
                "zeta": zeta,
                "n_mini_leaves": int(centers.shape[0]),
                "radius_growth": factor,
            },
        )
