"""Extension experiment: the Section 4.7 generality claim, head to head.

One dataset, one workload, four index structures from the paper's
applicability list -- bulk-loaded VAMSplit R*-tree (box pages, packed),
dynamic R*-tree (box pages, insertion-built), SS-tree (sphere pages),
and k-d-B-tree (disjoint space-partitioning pages) -- each measured and
each predicted by the sampling recipe adapted to its page geometry.

Expected shape: measured accesses rank bulk-R < {kdb, SS, dynamic-R*}
(packed MBRs beat everything; dead space and overlap cost the others);
every structure's prediction lands within ~15% at a 30% sample; and the
compensation need differs by geometry -- boxes need Theorem 1, spheres
need the calibrated radius growth, split planes need nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicMiniIndexModel, measure_dynamic_index
from repro.core.kdb_model import KDBMiniIndexModel
from repro.core.minindex import MiniIndexModel
from repro.core.spheres import SphereMiniIndexModel
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)
from repro.rtree.kdb import KDBTree
from repro.rtree.sstree import SSTree
from repro.rtree.tree import RTree

FRACTION = 0.3


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=min(0.04, experiment_scale()),
                     n_queries=min(100, experiment_queries()))


def test_ext_structure_comparison(setup, report, benchmark):
    points = setup.points
    c_data, c_dir = setup.predictor.c_data, setup.predictor.c_dir
    workload = setup.workload
    rng = lambda: np.random.default_rng(61)  # noqa: E731

    bulk = RTree.bulk_load(points, c_data, c_dir)
    spheres = SSTree.bulk_load(points, c_data, c_dir)
    kdb = KDBTree.bulk_load(points, c_data)
    dynamic = measure_dynamic_index(points, c_data, c_dir)

    def mean(index):
        return float(
            index.leaf_accesses_for_radius(
                workload.queries, workload.radii
            ).mean()
        )

    measured = {
        "bulk R-tree (boxes)": mean(bulk),
        "dynamic R*-tree (boxes)": mean(dynamic),
        "SS-tree (spheres)": mean(spheres),
        "k-d-B-tree (splits)": mean(kdb),
    }
    predictions = {
        "bulk R-tree (boxes)": MiniIndexModel(c_data, c_dir).predict(
            points, workload, FRACTION, rng()
        ),
        "dynamic R*-tree (boxes)": DynamicMiniIndexModel(
            c_data, c_dir
        ).predict(points, workload, FRACTION, rng()),
        "SS-tree (spheres)": SphereMiniIndexModel(c_data, c_dir).predict(
            points, workload, FRACTION, rng()
        ),
        "k-d-B-tree (splits)": KDBMiniIndexModel(c_data).predict(
            points, workload, FRACTION, rng()
        ),
    }
    compensation = {
        "bulk R-tree (boxes)": "Theorem 1 (box law)",
        "dynamic R*-tree (boxes)": "Theorem 1 + capacity scaling",
        "SS-tree (spheres)": "calibrated radius growth",
        "k-d-B-tree (splits)": "none needed",
    }

    rows = []
    errors = {}
    for name in measured:
        errors[name] = predictions[name].relative_error(measured[name])
        rows.append(
            [
                name,
                f"{measured[name]:.1f}",
                f"{predictions[name].mean_accesses:.1f}",
                format_signed_percent(errors[name]),
                compensation[name],
            ]
        )
    report(
        format_table(
            ["structure", "measured", f"sampled {FRACTION:.0%}", "rel. error",
             "compensation"],
            rows,
            title=(
                f"Extension -- Section 4.7 generality: four structures, one "
                f"recipe (TEXTURE60 analogue, N={points.shape[0]:,}, "
                f"{workload.n_queries} x {workload.k}-NN)"
            ),
        )
    )

    # The packed bulk-loaded R-tree is the best layout.
    best = measured["bulk R-tree (boxes)"]
    for name, value in measured.items():
        if name != "bulk R-tree (boxes)":
            assert value > best, name
    # Every structure's sampling prediction is usable.
    for name, error in errors.items():
        assert abs(error) < 0.22, (name, error)

    benchmark.pedantic(
        lambda: KDBMiniIndexModel(c_data).predict(
            points, workload, FRACTION, rng()
        ),
        rounds=3,
        iterations=1,
    )
