"""Ablation: the Theorem 1 compensation factor, on and off.

DESIGN.md Section 6.  Disabling the page growth turns every sampled
prediction into an underestimate whose magnitude grows as the sampling
fraction shrinks; enabling it moves the estimate toward the
measurement without (on average) overshooting.  The table quantifies
how much of the error the closed-form factor recovers at each fraction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compensation import compensation_side_factor
from repro.core.minindex import MiniIndexModel
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)

FRACTIONS = (0.08, 0.15, 0.30, 0.60)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def test_ablation_compensation_factor(setup, report, benchmark):
    measured = setup.measured_mean
    c_eff = setup.predictor.topology(setup.points.shape[0]).c_eff_data
    rows = []
    recovered_any = False
    for fraction in FRACTIONS:
        runs = {"on": [], "off": []}
        for seed in range(5):
            rng_state = np.random.default_rng(seed)
            for key, compensate in (("on", True), ("off", False)):
                model = MiniIndexModel(
                    setup.predictor.c_data, setup.predictor.c_dir,
                    compensate=compensate,
                )
                result = model.predict(
                    setup.points, setup.workload, fraction,
                    np.random.default_rng(seed),
                )
                runs[key].append(result.mean_accesses)
        mean_on = float(np.mean(runs["on"]))
        mean_off = float(np.mean(runs["off"]))
        factor = (
            compensation_side_factor(c_eff, fraction)
            if c_eff * fraction > 1
            else float("nan")
        )
        rows.append(
            [
                f"{fraction:.0%}",
                f"{factor:.3f}",
                format_signed_percent((mean_off - measured) / measured),
                format_signed_percent((mean_on - measured) / measured),
            ]
        )
        # Compensation must never push the estimate below the raw one.
        assert mean_on >= mean_off - 1e-9
        if mean_on > mean_off:
            recovered_any = True
    report(
        format_table(
            ["sample", "side factor", "err (raw)", "err (compensated)"],
            rows,
            title=(
                "Ablation -- Theorem 1 compensation on/off "
                f"(TEXTURE60 analogue, 5-seed means, measured {measured:.1f})"
            ),
        )
    )
    assert recovered_any  # the factor does real work at small fractions

    benchmark.pedantic(
        lambda: MiniIndexModel(
            setup.predictor.c_data, setup.predictor.c_dir
        ).predict(setup.points, setup.workload, 0.15, np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
