"""Figure 9: analytical I/O cost vs. memory size M.

One million 60-d points, t_seek = 10 ms, t_xfer = 0.4 ms, M swept.
Expected shape (Section 4.6): all three curves non-increasing in M;
the resampled prediction sits well below the on-disk build at every M
(with jumps where the h_upper heuristic switches levels); the cutoff
prediction is flat and one to two orders of magnitude below on-disk.
"""

from __future__ import annotations

import pytest

from repro.core.costmodel import AnalyticalCostModel
from repro.experiments import format_table

N_POINTS = 1_000_000
DIM = 60
MEMORY_SIZES = (1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000)


@pytest.fixture(scope="module")
def model():
    return AnalyticalCostModel()


def test_fig09_memory_sweep(model, report, benchmark):
    rows = []
    series = {"ondisk": [], "resampled": [], "cutoff": []}
    for memory in MEMORY_SIZES:
        ondisk = model.seconds(model.ondisk(N_POINTS, DIM, memory))
        resampled = model.seconds(model.resampled(N_POINTS, DIM, memory))
        cutoff = model.seconds(model.cutoff(N_POINTS, DIM, memory))
        series["ondisk"].append(ondisk)
        series["resampled"].append(resampled)
        series["cutoff"].append(cutoff)
        rows.append(
            [
                f"{memory:,}",
                f"{ondisk:,.1f}",
                f"{resampled:,.1f}",
                f"{cutoff:,.1f}",
                f"{ondisk / resampled:.1f}x",
                f"{ondisk / cutoff:.1f}x",
            ]
        )
    report(
        format_table(
            ["M", "on-disk (s)", "resampled (s)", "cutoff (s)",
             "vs resampled", "vs cutoff"],
            rows,
            title=(
                f"Figure 9 -- analytical I/O cost vs. memory size "
                f"(N={N_POINTS:,}, d={DIM}, Eqs. 1-5)"
            ),
        )
    )

    # Shape assertions:
    for name in series:
        values = series[name]
        # non-increasing in M (within small h_upper-jump tolerance for
        # the resampled curve, cf. "jumps in the graph")
        tolerance = 1.25 if name == "resampled" else 1.0001
        assert all(a >= b / tolerance for a, b in zip(values, values[1:])), name
    for ondisk, resampled, cutoff in zip(
        series["ondisk"], series["resampled"], series["cutoff"]
    ):
        assert cutoff < resampled < ondisk
        assert ondisk / cutoff > 10  # 1-2 orders of magnitude

    benchmark.pedantic(
        lambda: model.resampled(N_POINTS, DIM, 10_000), rounds=5, iterations=1
    )
