"""Ablation: split strategies -- and why the mini-index must reuse the
index's own strategy.

The paper's core argument for sampling over parametric models is that
the mini-index *replays the index's construction algorithm*.  This
ablation builds the real index under three split strategies
(max-variance rank splits = VAMSplit, max-extent rank splits, and
spatial-midpoint splits -- the layout uniform models assume) and shows:

* the measured accesses differ across strategies (layout matters);
* a mini-index built with the *matching* strategy predicts each layout
  accurately;
* predicting a VAMSplit index with a midpoint-split mini-index (a
  deliberate mismatch) degrades the estimate -- quantifying how much of
  the model's accuracy comes from structural fidelity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counting import knn_accesses_per_query
from repro.core.minindex import MiniIndexModel
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)
from repro.rtree.bulkload import BulkLoadConfig
from repro.rtree.split import max_extent_dimension, max_variance_dimension
from repro.rtree.tree import RTree

STRATEGIES = {
    "max-variance": BulkLoadConfig(dimension_rule=max_variance_dimension),
    "max-extent": BulkLoadConfig(dimension_rule=max_extent_dimension),
    "midpoint": BulkLoadConfig(rank_mode="midpoint"),
}
SAMPLING_FRACTION = 0.25


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def _measure(setup, config: BulkLoadConfig) -> float:
    tree = RTree.bulk_load(
        setup.points, setup.predictor.c_data, setup.predictor.c_dir,
        config=config,
    )
    lower, upper = tree.leaf_corners
    return float(
        np.mean(knn_accesses_per_query(lower, upper, setup.workload))
    )


def _predict(setup, config: BulkLoadConfig) -> float:
    model = MiniIndexModel(
        setup.predictor.c_data, setup.predictor.c_dir, config=config
    )
    result = model.predict(
        setup.points, setup.workload, SAMPLING_FRACTION,
        np.random.default_rng(23),
    )
    return result.mean_accesses


def test_ablation_split_strategies(setup, report, benchmark):
    rows = []
    measured = {}
    errors = {}
    for name, config in STRATEGIES.items():
        measured[name] = _measure(setup, config)
        predicted = _predict(setup, config)
        errors[name] = (predicted - measured[name]) / measured[name]
        rows.append(
            [
                name,
                f"{measured[name]:.1f}",
                f"{predicted:.1f}",
                format_signed_percent(errors[name]),
            ]
        )

    # The deliberate mismatch: midpoint-split mini-index predicting the
    # VAMSplit (max-variance) index.
    mismatch_prediction = _predict(setup, STRATEGIES["midpoint"])
    mismatch_error = (
        mismatch_prediction - measured["max-variance"]
    ) / measured["max-variance"]
    rows.append(
        [
            "midpoint mini vs VAM index",
            f"{measured['max-variance']:.1f}",
            f"{mismatch_prediction:.1f}",
            format_signed_percent(mismatch_error),
        ]
    )
    report(
        format_table(
            ["strategy", "measured", "mini-index pred", "rel. error"],
            rows,
            title=(
                "Ablation -- split strategies "
                f"(TEXTURE60 analogue, mini-index at "
                f"{SAMPLING_FRACTION:.0%} sample)"
            ),
        )
    )

    # Matching-strategy predictions are accurate for the rank-based
    # layouts; the midpoint layout's topology is data-dependent (no
    # imposable node counts), so its mini-index gets a wider band.
    for name in ("max-variance", "max-extent"):
        assert abs(errors[name]) < 0.15, name
    assert abs(errors["midpoint"]) < 0.45
    # Layouts genuinely differ (midpoint splits build different pages).
    assert measured["midpoint"] != pytest.approx(
        measured["max-variance"], rel=0.02
    )
    # The mismatched mini-index is worse than the matched one.
    assert abs(mismatch_error) > abs(errors["max-variance"])

    benchmark.pedantic(
        lambda: _predict(setup, STRATEGIES["max-variance"]),
        rounds=3,
        iterations=1,
    )
