"""Section 5.2's uniform-data validation.

100,000 uniformly distributed points in 8 dimensions (index height 3);
the paper reports relative errors between -0.5% and -3% for both the
resampled and cutoff approaches -- confirming that the model's
within-page uniformity assumptions are exact on uniform data.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.predictor import IndexCostPredictor
from repro.data import generators
from repro.experiments import (
    experiment_queries,
    format_signed_percent,
    format_table,
)
from repro.ondisk.measure import measure_knn


@pytest.fixture(scope="module")
def uniform_setup():
    # 8-d data is cheap: always run the paper's full N = 100,000 so the
    # tree has the paper's height 3 (scaled-down N collapses to 2).
    n = 100_000
    points = generators.uniform(n, 8, np.random.default_rng(21))
    predictor = IndexCostPredictor(dim=8, memory=max(2_000, n // 25))
    workload = predictor.make_workload(
        points, experiment_queries(), 21, seed=6
    )
    index = predictor.build_ondisk(points)
    measurement = measure_knn(index, workload)
    return points, predictor, workload, measurement


def test_uniform_8d_validation(uniform_setup, report, benchmark):
    points, predictor, workload, measurement = uniform_setup
    measured = measurement.mean_accesses
    topology = predictor.topology(points.shape[0])

    assert topology.height == 3  # as in the paper's Section 5.2 run
    rows = []
    errors = {}
    for method in ("resampled", "cutoff"):
        estimate = predictor.predict(points, workload, method=method)
        errors[method] = estimate.relative_error(measured)
        rows.append(
            [
                method,
                f"{estimate.mean_accesses:.1f}",
                format_signed_percent(errors[method]),
            ]
        )
    rows.append(["measured", f"{measured:.1f}", "0%"])
    report(
        format_table(
            ["Method", "Pages accessed", "Rel. error"],
            rows,
            title=(
                f"Section 5.2 -- uniform 8-d validation "
                f"(N={points.shape[0]:,}, height={topology.height}; paper "
                f"reports -0.5% .. -3%)"
            ),
        )
    )

    # On uniform data both methods must be accurate to a few percent.
    assert abs(errors["resampled"]) < 0.06
    assert abs(errors["cutoff"]) < 0.08

    benchmark.pedantic(
        lambda: predictor.predict(points, workload, method="cutoff"),
        rounds=3,
        iterations=1,
    )
