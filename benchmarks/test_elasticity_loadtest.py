"""Elasticity load test: a mid-window scale-out under closed-loop load.

A 2-shard cluster serves closed-loop clients; a third of the way into
the window a new replica is scaled out -- built, warmed from verified
peer bytes (zero refits), and fenced in under a new routing epoch --
while the clients keep hammering.  The window is split into pre / mid
/ post sub-windows around the handoff and the result lands in
``BENCH_elasticity.json`` at the repo root.

Assertions are the elastic availability gates: the handoff costs zero
errors anywhere (the epoch fence drops nothing), the warm-up refits
nothing, and the added capacity actually buys throughput -- the new
replica advertises the cheapest cost and carries no synthetic delay,
so post-scale >= pre-scale is a claim about routing moving the
traffic, not about noise.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster import run_elasticity_loadtest
from repro.experiments import format_table

RESULT_PATH = Path(__file__).parents[1] / "BENCH_elasticity.json"

DURATION_S = 1.5


def test_elasticity_loadtest(report, tmp_path):
    result = run_elasticity_loadtest(
        artifact_root=tmp_path, duration_s=DURATION_S, seed=0,
    )
    payload = result.as_dict()

    rows = [
        [window, f"{payload[window]['throughput_rps']:,.0f}",
         f"{payload[window]['latency_ms']['p50']:.2f}",
         f"{payload[window]['latency_ms']['p99']:.2f}",
         f"{payload[window]['resolved']:,}",
         f"{payload[window]['errors']:,}"]
        for window in ("pre", "mid", "post")
    ]
    table = format_table(
        ["window", "req/s", "p50 ms", "p99 ms", "resolved", "errors"],
        rows,
        title=f"Elasticity load test ({payload['n_shards']} shards, "
              f"{payload['n_replicas_start']}+1 replicas; scale-out at "
              f"t/3 took {payload['scale']['wall_s'] * 1e3:.1f} ms, "
              f"{payload['scale']['refits']} refits, post/pre "
              f"throughput {payload['post_over_pre']:.2f}x)",
    )
    report(table)
    RESULT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # the epoch-fenced handoff dropped and errored nothing, anywhere
    assert payload["errors"] == 0
    for window in ("pre", "mid", "post"):
        assert payload[window]["errors"] == 0
    assert payload["pre"]["resolved"] > 50
    assert payload["post"]["resolved"] > 50
    # the new replica warmed entirely from verified peer bytes
    assert payload["scale"]["refits"] == 0
    assert all(
        w["via"].startswith("peer:") for w in payload["scale"]["warmed"]
    )
    # the fence really moved the epoch forward
    assert payload["scale"]["epoch"] == 2
    assert payload["router"]["routing_epoch"] == 2
    # added capacity bought throughput: post-scale >= pre-scale
    assert payload["post_over_pre"] >= 1.0
    assert payload["router"]["unavailable"] == 0
