"""Figure 2: relative prediction error vs. sample size (COLOR64).

The paper runs 500 21-NN queries on COLOR64 and compares actual page
accesses with the mini-index prediction across sampling fractions,
with and without the Theorem 1 compensation.  Expected shape: both
curves are accurate for large samples, the error explodes below a ~10%
sampling fraction (pages degenerate once they expect ~1 point), and
compensation never hurts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.minindex import MiniIndexModel
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)

FRACTIONS = (0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.00)


@pytest.fixture(scope="module")
def setup():
    return get_setup("COLOR64", scale=experiment_scale(),
                     n_queries=experiment_queries())


def _predict(setup, fraction: float, compensate: bool):
    model = MiniIndexModel(
        setup.predictor.c_data, setup.predictor.c_dir, compensate=compensate
    )
    return model.predict(
        setup.points, setup.workload, fraction, np.random.default_rng(17)
    )


def test_fig02_sample_size_error_curve(setup, report, benchmark):
    measured = setup.measured_mean
    rows = []
    errors = {}
    for fraction in FRACTIONS:
        with_comp = _predict(setup, fraction, True)
        without = _predict(setup, fraction, False)
        errors[fraction] = (
            with_comp.relative_error(measured),
            without.relative_error(measured),
        )
        rows.append(
            [
                f"{fraction:.0%}",
                f"{with_comp.mean_accesses:.1f}",
                format_signed_percent(errors[fraction][0]),
                f"{without.mean_accesses:.1f}",
                format_signed_percent(errors[fraction][1]),
            ]
        )
    report(
        format_table(
            ["sample", "pred (comp)", "err (comp)", "pred (raw)", "err (raw)"],
            rows,
            title=(
                f"Figure 2 -- relative error vs. sample size "
                f"(COLOR64 analogue, N={setup.points.shape[0]}, "
                f"{setup.workload.n_queries} x 21-NN, measured mean "
                f"{measured:.1f})"
            ),
        )
    )

    # Shape assertions (the paper's qualitative claims):
    # (1) accurate at large samples,
    assert abs(errors[0.50][0]) < 0.10
    # (2) compensation never hurts materially,
    for fraction in FRACTIONS:
        assert errors[fraction][0] >= errors[fraction][1] - 0.02
    # (3) the error collapses below ~10% sampling (Section 3.3).
    assert errors[0.02][1] < errors[0.35][1] - 0.10

    # Timed region: one compensated prediction at a mid fraction.
    benchmark.pedantic(
        lambda: _predict(setup, 0.2, True), rounds=3, iterations=1
    )
