"""Controller load test: an autonomous merge under decaying load.

An over-partitioned 3-shard cluster serves closed-loop clients; a
third of the way into the window one client retires (the load decay)
and an operator thread starts ticking the topology controller.  The
controller must notice the stranded cheap sibling pair, wait out its
dwell window, and fire one epoch-fenced merge while the surviving
clients keep hammering.  The window is split into pre / mid / post
sub-windows around the surgery and the result lands in
``BENCH_controller.json`` at the repo root.

Assertions are the autonomy gates: the topology actually shrank, the
surgery cost zero errors anywhere (the fence drops nothing), the
merged artifact was fitted once and adopted by peers (zero refits),
post-merge throughput is within noise of pre-merge -- a *smaller*
topology absorbing the same decayed load -- and the flap counter is
zero, proving the hysteresis held.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster import run_controller_loadtest
from repro.experiments import format_table

RESULT_PATH = Path(__file__).parents[1] / "BENCH_controller.json"

DURATION_S = 1.8


def test_controller_loadtest(report, tmp_path):
    result = run_controller_loadtest(
        artifact_root=tmp_path, duration_s=DURATION_S, seed=0,
    )
    payload = result.as_dict()

    rows = [
        [window, f"{payload[window]['throughput_rps']:,.0f}",
         f"{payload[window]['latency_ms']['p50']:.2f}",
         f"{payload[window]['latency_ms']['p99']:.2f}",
         f"{payload[window]['resolved']:,}",
         f"{payload[window]['errors']:,}"]
        for window in ("pre", "mid", "post")
    ]
    table = format_table(
        ["window", "req/s", "p50 ms", "p99 ms", "resolved", "errors"],
        rows,
        title=f"Controller load test ({payload['n_shards_start']} -> "
              f"{payload['n_shards_end']} shards; merge on tick "
              f"{payload['merge'].get('tick')}, post/pre throughput "
              f"{payload['post_over_pre']:.2f}x, "
              f"{payload['flaps']} flaps)",
    )
    report(table)
    RESULT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # the controller really merged: a strictly smaller topology
    assert payload["n_shards_end"] < payload["n_shards_start"]
    assert payload["controller"]["counters"]["merge"] == 1
    assert payload["merge"]["action"] == "merge"
    # the autonomous surgery cost zero errors anywhere
    assert payload["errors"] == 0
    for window in ("pre", "mid", "post"):
        assert payload[window]["errors"] == 0
    assert payload["pre"]["resolved"] > 50
    assert payload["post"]["resolved"] > 50
    # the merged artifact was fitted once on the donor and adopted by
    # every other owner: zero rebuilds across the whole window
    assert payload["refits"] == 0
    # post-merge throughput within noise of pre-merge: the smaller
    # topology absorbed the decayed load (same client population on
    # both sides of the fence)
    assert payload["post_over_pre"] >= 0.8
    # the hysteresis held: the controller never inverted a surgery
    # within the dwell window
    assert payload["flaps"] == 0
    assert payload["router"]["unavailable"] == 0
    assert payload["router"]["stale_rejections"] == 0
