"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one table or figure of the paper: it
assembles the experiment (outside the timed region), times the
prediction step with pytest-benchmark, prints the paper-style rows
live, and archives them under ``benchmarks/results/``.

Scale knobs: ``REPRO_SCALE`` (default 0.1) and ``REPRO_QUERIES``
(default 200) -- see ``repro.experiments.config``.  EXPERIMENTS.md
records the paper-vs-measured comparison for the default configuration.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report(capsys, request):
    """Print a table live (past pytest's capture) and archive it."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{request.node.name}.txt"
        out.write_text(text + "\n")

    return _report
