"""Extension experiment: range-query prediction.

Section 1 of the paper: "our work can also be applied to range queries
and other indexing schemes" -- but the evaluation only covers k-NN.
This extension runs the claim: density-biased box queries across a
selectivity sweep, predicted by the mini-index and the two phased
methods against the measured layout.

Expected shape: measured accesses grow monotonically with the query
side length; the sampling predictors track the measurement closely
wherever queries touch more than a handful of pages (in the tiny-box
regime the count is boundary-dominated -- a one-page absolute error is
a large relative one); the cutoff method underestimates, as for k-NN.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counting import range_accesses_per_query
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)
from repro.rtree.tree import RTree
from repro.workload.queries import density_biased_range_workload

SIDES = (0.05, 0.1, 0.2, 0.4)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def test_ext_range_query_prediction(setup, report, benchmark):
    points = setup.points
    predictor = setup.predictor
    from repro.core.predictor import IndexCostPredictor

    dense_predictor = IndexCostPredictor(
        dim=points.shape[1],
        memory=max(2_000, points.shape[0] // 14),
        c_data=predictor.c_data,
        c_dir=predictor.c_dir,
    )
    tree = RTree.bulk_load(points, predictor.c_data, predictor.c_dir)
    lower, upper = tree.leaf_corners

    rows = []
    measured_series = []
    errors = {"mini": [], "resampled": [], "cutoff": []}
    for side in SIDES:
        workload = density_biased_range_workload(
            points, min(100, experiment_queries()), side,
            np.random.default_rng(41),
        )
        measured = float(
            np.mean(range_accesses_per_query(lower, upper, workload))
        )
        measured_series.append(measured)
        predictions = {
            "mini": predictor.predict(
                points, workload, method="mini", sampling_fraction=0.3,
                seed=42,
            ),
            "resampled": dense_predictor.predict(
                points, workload, method="resampled", seed=42
            ),
            "cutoff": dense_predictor.predict(
                points, workload, method="cutoff", seed=42
            ),
        }
        row = [f"{side:.2f}", f"{measured:.1f}"]
        for name in ("mini", "resampled", "cutoff"):
            error = predictions[name].relative_error(measured)
            errors[name].append(error)
            row.extend(
                [f"{predictions[name].mean_accesses:.1f}",
                 format_signed_percent(error)]
            )
        rows.append(row)
    report(
        format_table(
            ["side", "measured", "mini", "err", "resampled", "err",
             "cutoff", "err"],
            rows,
            title=(
                f"Extension -- range-query prediction "
                f"(TEXTURE60 analogue, N={points.shape[0]:,}, "
                f"density-biased box queries)"
            ),
        )
    )

    # Accesses grow with the query box.
    assert all(a < b for a, b in zip(measured_series, measured_series[1:]))
    # The sampling predictors track the measurement: relative accuracy
    # once the count is volume-dominated, absolute accuracy (a few
    # pages) in the boundary-dominated tiny-box regime.
    for name in ("mini", "resampled"):
        for measured, error in zip(measured_series, errors[name]):
            if measured >= 30:
                assert abs(error) < 0.20, (name, measured, error)
            else:
                # Boundary-dominated regime: magnitude is noise-bound,
                # but the bias direction (underestimation from shrunken
                # sample pages) is systematic.
                assert error < 0.10, (name, measured, error)
    # The cutoff method underestimates, as it does for k-NN.
    assert all(e < 0.05 for e in errors["cutoff"])

    side_workload = density_biased_range_workload(
        points, 50, 0.2, np.random.default_rng(41)
    )
    benchmark.pedantic(
        lambda: dense_predictor.predict(
            points, side_workload, method="resampled", seed=42
        ),
        rounds=3,
        iterations=1,
    )
