"""Ablation: how conservative is the paper's cold-read I/O pricing?

The paper charges every leaf access as a physical random read ("all
page accesses are assumed to be random, which was confirmed for the
on-disk index").  With a buffer pool, a density-biased workload re-hits
popular cluster pages.  This ablation replays the measured workload's
leaf accesses through LRU pools of increasing size and reports the
physical-I/O fraction that survives.

Expected shape: 0-capacity matches the paper's pricing exactly; the
hit rate grows with the pool; once the pool holds all leaf pages,
every page is read at most once (physical I/O = distinct pages
touched).
"""

from __future__ import annotations

import pytest

from repro.disk.bufferpool import BufferedDisk
from repro.disk.device import SimulatedDisk
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_table,
    get_setup,
)

POOL_FRACTIONS = (0.0, 0.05, 0.25, 1.0)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def _replay(setup, capacity_pages: int):
    """Replay every query's accessed leaves through a fresh pool."""
    pool = BufferedDisk(SimulatedDisk(setup.index.file.disk.parameters),
                        capacity_pages)
    for query in setup.workload.queries:
        result = setup.index.tree.knn(query, setup.workload.k,
                                      collect_leaves=True)
        for leaf in result.accessed_leaves:
            first, count = setup.index.leaf_page_span(leaf)
            pool.read(first, count)
        pool.drop_head()
    return pool


def test_ablation_buffer_pool(setup, report, benchmark):
    n_leaf_pages = sum(
        setup.index.leaf_page_span(l)[1] for l in setup.index.tree.leaves
    )
    rows = []
    physical = {}
    for fraction in POOL_FRACTIONS:
        capacity = round(n_leaf_pages * fraction)
        pool = _replay(setup, capacity)
        physical[fraction] = pool.disk.cost
        rows.append(
            [
                f"{fraction:.0%} ({capacity:,} pages)",
                f"{pool.hit_rate:.1%}",
                f"{pool.disk.cost.transfers:,}",
                f"{pool.disk.cost.seconds():,.2f} s",
            ]
        )
    report(
        format_table(
            ["pool size", "hit rate", "physical transfers", "physical cost"],
            rows,
            title=(
                f"Ablation -- LRU buffer pool vs. the paper's cold-read "
                f"pricing (TEXTURE60 analogue, {setup.workload.n_queries} "
                f"queries, {n_leaf_pages:,} leaf pages)"
            ),
        )
    )

    # 0-capacity reproduces the paper's measured query I/O exactly.
    assert physical[0.0].transfers == setup.measurement.io_cost.transfers
    # Physical I/O decreases monotonically with the pool.
    costs = [physical[f].transfers for f in POOL_FRACTIONS]
    assert all(a >= b for a, b in zip(costs, costs[1:]))
    # A pool covering every leaf page reads each distinct page once.
    assert physical[1.0].transfers <= n_leaf_pages

    benchmark.pedantic(lambda: _replay(setup, 0), rounds=1, iterations=1)
