"""Figure 10: analytical I/O cost vs. data dimensionality (plus the
Section 4.6 dataset-size sweep).

One million points, memory M = 600,000 / d (points in memory scale
inversely with the dimensionality; M = 10,000 at d = 60).  Expected
shape: roughly linear growth with d for all approaches, the cutoff
approach about two orders of magnitude below on-disk throughout, the
resampled approach in between with h_upper-choice jumps.
"""

from __future__ import annotations

import pytest

from repro.core.costmodel import AnalyticalCostModel
from repro.experiments import format_table

N_POINTS = 1_000_000
DIMENSIONS = (20, 30, 40, 60, 80, 100, 120)
DATASET_SIZES = (200_000, 500_000, 1_000_000, 2_000_000)


@pytest.fixture(scope="module")
def model():
    return AnalyticalCostModel()


def test_fig10_dimensionality_sweep(model, report, benchmark):
    rows = []
    series = {"ondisk": [], "resampled": [], "cutoff": []}
    for dim in DIMENSIONS:
        memory = 600_000 // dim
        ondisk = model.seconds(model.ondisk(N_POINTS, dim, memory))
        resampled = model.seconds(model.resampled(N_POINTS, dim, memory))
        cutoff = model.seconds(model.cutoff(N_POINTS, dim, memory))
        series["ondisk"].append(ondisk)
        series["resampled"].append(resampled)
        series["cutoff"].append(cutoff)
        rows.append(
            [
                dim,
                f"{memory:,}",
                f"{ondisk:,.1f}",
                f"{resampled:,.1f}",
                f"{cutoff:,.1f}",
                f"{ondisk / cutoff:.0f}x",
            ]
        )
    report(
        format_table(
            ["d", "M", "on-disk (s)", "resampled (s)", "cutoff (s)",
             "on-disk/cutoff"],
            rows,
            title=(
                f"Figure 10 -- analytical I/O cost vs. dimensionality "
                f"(N={N_POINTS:,}, M=600,000/d)"
            ),
        )
    )

    # On-disk and cutoff grow with d; cutoff keeps a 1-2 order gap.
    assert series["ondisk"][-1] > series["ondisk"][0]
    assert series["cutoff"][-1] > series["cutoff"][0]
    for ondisk, cutoff in zip(series["ondisk"], series["cutoff"]):
        assert ondisk / cutoff > 10

    benchmark.pedantic(
        lambda: model.ondisk(N_POINTS, 60, 10_000), rounds=5, iterations=1
    )


def test_fig10b_dataset_size_sweep(model, report, benchmark):
    """Section 4.6 text: the same comparison across dataset sizes --
    'instead of hours, the new approaches take minutes or seconds'."""
    dim = 60
    rows = []
    for n in DATASET_SIZES:
        # Table 3's memory ratio (M = 10,000 at N = 275,465), so the
        # error-optimal h_upper stays in its efficient regime.
        memory = max(2_000, round(n * 10_000 / 275_465))
        ondisk = model.seconds(model.ondisk(n, dim, memory))
        resampled = model.seconds(model.resampled(n, dim, memory))
        cutoff = model.seconds(model.cutoff(n, dim, memory))
        rows.append(
            [
                f"{n:,}",
                f"{memory:,}",
                f"{ondisk:,.1f}",
                f"{resampled:,.1f}",
                f"{cutoff:,.1f}",
            ]
        )
        assert cutoff < resampled < ondisk
        assert ondisk / cutoff > 10
    report(
        format_table(
            ["N", "M", "on-disk (s)", "resampled (s)", "cutoff (s)"],
            rows,
            title="Section 4.6 -- analytical I/O cost vs. dataset size (d=60)",
        )
    )

    benchmark.pedantic(
        lambda: model.resampled(500_000, 60, 5_000), rounds=5, iterations=1
    )
