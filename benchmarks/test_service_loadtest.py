"""Service load test: sustained throughput and tail latency, pinned.

Eight closed-loop tenants hammer a four-worker service for a fixed
window, once on the warm fast path and once through the full governed
resampled pipeline.  The warm-path result -- throughput plus
p50/p95/p99 latency -- lands in ``BENCH_service.json`` at the repo
root, so the serving claim is version-controlled the same way the
kernel-throughput claim is.  The assertions are deliberately loose
sanity floors (CI machines vary wildly); the JSON carries the real
numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import format_table
from repro.service import run_loadtest

RESULT_PATH = Path(__file__).parents[1] / "BENCH_service.json"

N_TENANTS = 8
WORKERS = 4
DURATION_S = 2.0


def test_service_loadtest(report):
    warm = run_loadtest(
        n_tenants=N_TENANTS, workers=WORKERS, duration_s=DURATION_S,
        method="warm", seed=0,
    )
    governed = run_loadtest(
        n_tenants=N_TENANTS, workers=WORKERS, duration_s=DURATION_S / 2,
        method="resampled", seed=0,
    )

    rows = []
    for label, res in (("warm", warm), ("resampled", governed)):
        rows.append([
            label,
            f"{res.throughput_rps:,.0f}",
            f"{res.p50_ms:.2f}",
            f"{res.p95_ms:.2f}",
            f"{res.p99_ms:.2f}",
            f"{res.resolved:,}",
            f"{res.errors:,}",
        ])
    report(format_table(
        ["method", "req/s", "p50 ms", "p95 ms", "p99 ms", "resolved",
         "errors"],
        rows,
        title=f"Prediction service load test ({N_TENANTS} tenants, "
              f"{WORKERS} workers)",
    ))

    payload = warm.as_dict()
    payload["governed_resampled"] = {
        "throughput_rps": round(governed.throughput_rps, 1),
        "latency_ms": governed.as_dict()["latency_ms"],
        "resolved": governed.resolved,
        "degraded": governed.degraded,
        "errors": governed.errors,
    }
    RESULT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # sanity floors, not performance gates: every tenant got service,
    # nothing errored on the warm path, and the tail is finite
    assert warm.n_tenants == N_TENANTS
    assert warm.resolved > N_TENANTS * 10
    assert warm.errors == 0
    assert 0.0 < warm.p50_ms <= warm.p95_ms <= warm.p99_ms
    assert all(
        snap["completed"] > 0 for snap in warm.tenants.values()
    ), "a tenant was starved during the load test"
    assert governed.resolved > 0
