"""Extension experiment: predicting a *dynamic* R*-tree (Section 4.7).

The paper asserts its technique applies to the whole family of
fixed-capacity-page index structures, including insertion-built
R-tree variants, but only evaluates the bulk-loaded VAMSplit tree.
This extension closes that gap: build a tuple-at-a-time R*-tree
(Beckmann et al. heuristics), predict its leaf accesses with the
Section 3 recipe (same insertion algorithm on a sample, page capacity
scaled by the sampling fraction, Theorem 1 growth), and compare with
the bulk-loaded index side by side.

Expected shape: the dynamic index needs *more* accesses than the
packed bulk-loaded layout on the same data and workload (the classic
bulk-loading argument); the sampling predictor tracks each index's own
behavior, with accuracy improving with the sampling fraction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicMiniIndexModel, measure_dynamic_index
from repro.core.minindex import MiniIndexModel
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)
from repro.rtree.tree import RTree

FRACTIONS = (0.3, 0.5)


@pytest.fixture(scope="module")
def setup():
    # The dynamic build is tuple-at-a-time; run it on a slice of the
    # TEXTURE60 analogue to keep insertion wall-clock sane.
    return get_setup("TEXTURE60", scale=min(0.04, experiment_scale()),
                     n_queries=min(100, experiment_queries()))


def test_ext_dynamic_rstar_prediction(setup, report, benchmark):
    points = setup.points
    predictor = setup.predictor
    c_data, c_dir = predictor.c_data, predictor.c_dir
    workload = setup.workload

    dynamic = measure_dynamic_index(points, c_data, c_dir)
    dynamic_measured = float(
        dynamic.leaf_accesses_for_radius(workload.queries, workload.radii).mean()
    )
    bulk = RTree.bulk_load(points, c_data, c_dir)
    bulk_measured = float(
        bulk.leaf_accesses_for_radius(workload.queries, workload.radii).mean()
    )

    rows = [
        ["bulk (VAMSplit)", "measured", f"{bulk_measured:.1f}",
         f"{bulk.n_leaves:,}", ""],
        ["dynamic (R*)", "measured", f"{dynamic_measured:.1f}",
         f"{dynamic.n_leaves:,}", ""],
    ]
    errors = {}
    for fraction in FRACTIONS:
        bulk_pred = MiniIndexModel(c_data, c_dir).predict(
            points, workload, fraction, np.random.default_rng(31)
        )
        dyn_pred = DynamicMiniIndexModel(c_data, c_dir).predict(
            points, workload, fraction, np.random.default_rng(31)
        )
        errors[("bulk", fraction)] = bulk_pred.relative_error(bulk_measured)
        errors[("dyn", fraction)] = (
            dyn_pred.mean_accesses - dynamic_measured
        ) / dynamic_measured
        rows.append(
            ["bulk (VAMSplit)", f"sampled {fraction:.0%}",
             f"{bulk_pred.mean_accesses:.1f}", "",
             format_signed_percent(errors[("bulk", fraction)])]
        )
        rows.append(
            ["dynamic (R*)", f"sampled {fraction:.0%}",
             f"{dyn_pred.mean_accesses:.1f}",
             f"{dyn_pred.detail['n_mini_leaves']:,} (mini)",
             format_signed_percent(errors[("dyn", fraction)])]
        )
    report(
        format_table(
            ["index", "source", "accesses", "leaves", "rel. error"],
            rows,
            title=(
                f"Extension -- sampling prediction for a dynamic R*-tree "
                f"(TEXTURE60 analogue, N={points.shape[0]:,}, "
                f"{workload.n_queries} x {workload.k}-NN)"
            ),
        )
    )

    # The dynamic layout is worse than the packed bulk load.
    assert dynamic_measured > bulk_measured
    # The predictor tracks each index's own behavior.
    assert abs(errors[("dyn", 0.5)]) < 0.20
    assert abs(errors[("bulk", 0.5)]) < 0.10
    # Accuracy does not degrade with a larger sample.
    assert abs(errors[("dyn", 0.5)]) <= abs(errors[("dyn", 0.3)]) + 0.05

    benchmark.pedantic(
        lambda: DynamicMiniIndexModel(c_data, c_dir).predict(
            points, workload, 0.3, np.random.default_rng(31)
        ),
        rounds=1,
        iterations=1,
    )
