"""Counting-kernel throughput: reference loop vs. tiled numpy backend.

The refactor's performance claim, measured: for each (queries, leaves)
grid cell the same sphere-counting problem runs through every available
kernel, counts are asserted bit-identical, and the speedup of
``numpy_batched`` over ``reference`` is recorded.  The 5k x 20k cell --
a paper-scale workload against a paper-scale leaf set -- must come out
at least 5x faster; results land in ``BENCH_kernels.json`` at the repo
root so the claim is pinned in version control.

The fused multi-radius entry point is measured alongside: one
``count_grid`` dispatch over ``GRID_ROWS`` radius rows against the same
geometry vs. the per-row ``count_knn`` loop it replaces.  The fused
dispatch walks the query/leaf pairs once instead of once per row, so it
must beat the loop clearly on the batched backend.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import generators
from repro.experiments import format_table
from repro.kernels import LeafGeometry, available_kernels, get_kernel

DIM = 16
GRID = ((100, 1_000), (1_000, 5_000), (5_000, 20_000))
GRID_ROWS = 8
RESULT_PATH = Path(__file__).parents[1] / "BENCH_kernels.json"


def _workbench(n_queries: int, n_leaves: int, seed: int = 0):
    """A clustered leaf set and k-NN-like spheres probing it.

    Clustered boxes with small local radii keep per-query selectivity
    realistic (most leaves pruned), which is exactly the regime the
    batched kernel's per-dimension compaction is built for.
    """
    gen = np.random.default_rng(seed)
    centers = generators.gaussian_mixture(
        n_leaves, DIM, gen, n_clusters=8, cluster_std=0.05
    )
    half = gen.random((n_leaves, DIM)) * 0.02
    geometry = LeafGeometry.from_corners(centers - half, centers + half)
    queries = centers[gen.choice(n_leaves, n_queries)] + (
        gen.standard_normal((n_queries, DIM)) * 0.01
    )
    radii = gen.random(n_queries) * 0.08
    return geometry, queries, radii


def _time_kernel(kernel, geometry, queries, radii, repeats: int = 3):
    kernel.count_knn(geometry, queries, radii)  # warm-up / JIT
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        counts = kernel.count_knn(geometry, queries, radii)
        best = min(best, time.perf_counter() - start)
    return counts, best


def _time_fused_grid(kernel, geometry, queries, grid, repeats: int = 3):
    kernel.count_grid(geometry, queries, grid)  # warm-up / JIT
    best_fused = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fused = kernel.count_grid(geometry, queries, grid)
        best_fused = min(best_fused, time.perf_counter() - start)
    best_loop = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        looped = np.stack([
            kernel.count_knn(geometry, queries, row) for row in grid
        ])
        best_loop = min(best_loop, time.perf_counter() - start)
    np.testing.assert_array_equal(fused, looped, kernel.name)
    return best_fused, best_loop


def test_kernel_throughput(report):
    cells = []
    rows = []
    for n_queries, n_leaves in GRID:
        geometry, queries, radii = _workbench(n_queries, n_leaves)
        timings: dict[str, float] = {}
        baseline = None
        for name in available_kernels():
            counts, seconds = _time_kernel(
                get_kernel(name), geometry, queries, radii
            )
            if baseline is None:
                baseline_counts = counts
            else:
                np.testing.assert_array_equal(counts, baseline_counts, name)
            baseline = baseline_counts
            timings[name] = seconds
        pairs = n_queries * n_leaves
        speedup = timings["reference"] / timings["numpy_batched"]
        cells.append({
            "n_queries": n_queries,
            "n_leaves": n_leaves,
            "dim": DIM,
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "pairs_per_second": {
                k: round(pairs / v) for k, v in timings.items()
            },
            "speedup_vs_reference": {
                k: round(timings["reference"] / v, 2) for k, v in timings.items()
            },
        })
        rows.append([
            f"{n_queries:,} x {n_leaves:,}",
            *(f"{timings[k] * 1e3:,.1f}" for k in sorted(timings)),
            f"{speedup:.1f}x",
        ])

    report(format_table(
        ["cell (q x leaves)",
         *(f"{name} (ms)" for name in sorted(available_kernels())),
         "batched speedup"],
        rows,
        title=f"Counting-kernel throughput (d={DIM}, best of 3)",
    ))
    # The fused multi-radius dispatch on the mid-size cell: one
    # count_grid over GRID_ROWS scaled radius rows vs the per-row loop.
    n_queries, n_leaves = GRID[1]
    geometry, queries, radii = _workbench(n_queries, n_leaves)
    gen = np.random.default_rng(1)
    radius_grid = radii[None, :] * (
        0.25 + 1.5 * gen.random((GRID_ROWS, 1))
    )
    grid_rows = []
    grid_cells = {}
    for name in available_kernels():
        fused_s, loop_s = _time_fused_grid(
            get_kernel(name), geometry, queries, radius_grid
        )
        grid_cells[name] = {
            "fused_seconds": round(fused_s, 6),
            "per_row_loop_seconds": round(loop_s, 6),
            "grid_speedup": round(loop_s / fused_s, 2),
        }
        grid_rows.append([
            name, f"{fused_s * 1e3:,.1f}", f"{loop_s * 1e3:,.1f}",
            f"{loop_s / fused_s:.1f}x",
        ])
    report(format_table(
        ["kernel", "fused (ms)", "per-row loop (ms)", "grid speedup"],
        grid_rows,
        title=f"Fused count_grid, {GRID_ROWS} radius rows on "
              f"{n_queries:,} x {n_leaves:,} (best of 3)",
    ))

    RESULT_PATH.write_text(json.dumps({
        "dim": DIM,
        "kernels": list(available_kernels()),
        "cells": cells,
        "count_grid": {
            "n_queries": n_queries,
            "n_leaves": n_leaves,
            "grid_rows": GRID_ROWS,
            "kernels": grid_cells,
        },
    }, indent=2) + "\n")

    headline = cells[-1]["speedup_vs_reference"]["numpy_batched"]
    assert headline >= 5.0, (
        f"numpy_batched only {headline:.1f}x faster than reference "
        f"on the {GRID[-1]} cell"
    )
    grid_headline = grid_cells["numpy_batched"]["grid_speedup"]
    assert grid_headline >= 2.0, (
        f"fused count_grid only {grid_headline:.1f}x faster than the "
        f"per-row count_knn loop on numpy_batched"
    )


@pytest.mark.skipif(
    "numba" not in available_kernels(), reason="numba not installed"
)
def test_numba_matches_on_benchmark_cell():
    geometry, queries, radii = _workbench(*GRID[0])
    np.testing.assert_array_equal(
        get_kernel("numba").count_knn(geometry, queries, radii),
        get_kernel("reference").count_knn(geometry, queries, radii),
    )
    grid = np.stack([radii * 0.5, radii, radii * 2.0])
    np.testing.assert_array_equal(
        get_kernel("numba").count_grid(geometry, queries, grid),
        get_kernel("reference").count_grid(geometry, queries, grid),
    )
