"""Coalesced-serving throughput: the batched execution plane, pinned.

The same eight-tenant warm workload as ``BENCH_service.json`` runs
twice with bursty closed-loop clients (``burst=8`` pipelined
submissions per iteration, so a queue depth exists): once with request
coalescing off, once with it on.  Responses are bit-identical either
way -- the chaos suite proves that -- so the only thing this measures
is how much throughput the fused dispatch buys.  The pair lands in
``BENCH_batching.json`` at the repo root, and the coalesced side must
sustain at least twice the uncoalesced baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import format_table
from repro.service import run_loadtest

RESULT_PATH = Path(__file__).parents[1] / "BENCH_batching.json"

N_TENANTS = 8
WORKERS = 4
DURATION_S = 2.0
BURST = 8


def test_batching_loadtest(report):
    common = dict(
        n_tenants=N_TENANTS, workers=WORKERS, duration_s=DURATION_S,
        method="warm", seed=0, burst=BURST,
    )
    baseline = run_loadtest(coalesce=False, **common)
    coalesced = run_loadtest(coalesce=True, **common)
    speedup = coalesced.throughput_rps / max(baseline.throughput_rps, 1e-9)

    rows = []
    for label, res in (("uncoalesced", baseline), ("coalesced", coalesced)):
        batching = res.batching
        rows.append([
            label,
            f"{res.throughput_rps:,.0f}",
            f"{res.p50_ms:.2f}",
            f"{res.p99_ms:.2f}",
            f"{res.resolved:,}",
            f"{batching['mean_batch_size']:.1f}"
            if batching.get("enabled") else "-",
        ])
    report(format_table(
        ["mode", "req/s", "p50 ms", "p99 ms", "resolved", "mean batch"],
        rows,
        title=f"Coalesced vs uncoalesced serving ({N_TENANTS} tenants, "
              f"{WORKERS} workers, burst {BURST}) -- "
              f"speedup {speedup:.2f}x",
    ))

    RESULT_PATH.write_text(json.dumps({
        "baseline": baseline.as_dict(),
        "coalesced": coalesced.as_dict(),
        "speedup": round(speedup, 2),
    }, indent=2, sort_keys=True) + "\n")

    # correctness floors first: same workload, zero errors on both sides
    for res in (baseline, coalesced):
        assert res.errors == 0
        assert res.resolved > N_TENANTS * 10
        assert all(
            snap["completed"] > 0 for snap in res.tenants.values()
        ), "a tenant was starved during the load test"
    # occupancy: the coalescer found real batches, not singletons
    assert coalesced.batching["enabled"]
    assert (coalesced.batching["batched_requests"]
            > coalesced.batching["batches_dispatched"] > 0)
    assert coalesced.batching["mean_batch_size"] > 1.5
    # the performance gate: fused dispatch at least doubles throughput
    assert speedup >= 2.0, (
        f"coalescing only bought {speedup:.2f}x over the uncoalesced "
        f"baseline ({baseline.throughput_rps:,.0f} -> "
        f"{coalesced.throughput_rps:,.0f} req/s)"
    )
