"""Ablation: exact vs. sample-estimated query radii (Section 4.2).

The paper computes query spheres with a full scan but remarks that
"the search radius does not seem to be affected much by the sample
ratio" when estimated from the sample instead.  This ablation
quantifies the remark: radii estimated as the ``round(k * zeta)``-th
neighbor within the sample, compared with the exact scan radii, and
the downstream effect on the predicted access counts.

Expected shape: the radius ratio stays near 1 across sampling
fractions, and the prediction built on sampled radii stays within a
few points of the exact-radius prediction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.minindex import MiniIndexModel
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)
from repro.workload.queries import KNNWorkload, sampled_knn_radii

FRACTIONS = (0.5, 0.3, 0.15, 0.08)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def test_ablation_radius_source(setup, report, benchmark):
    points = setup.points
    workload = setup.workload
    measured = setup.measured_mean
    rows = []
    ratio_by_fraction = {}
    error_by_fraction = {}
    for fraction in FRACTIONS:
        rng = np.random.default_rng(71)
        n_sample = round(points.shape[0] * fraction)
        sample = points[rng.choice(points.shape[0], n_sample, replace=False)]
        estimated = sampled_knn_radii(sample, workload.queries, workload.k,
                                      fraction)
        ratio = float(np.median(estimated / workload.radii))
        ratio_by_fraction[fraction] = ratio

        estimated_workload = KNNWorkload(
            k=workload.k,
            query_ids=workload.query_ids,
            queries=workload.queries,
            radii=estimated,
        )
        prediction = MiniIndexModel(
            setup.predictor.c_data, setup.predictor.c_dir
        ).predict(points, estimated_workload, fraction,
                  np.random.default_rng(72))
        error_by_fraction[fraction] = prediction.relative_error(measured)
        rows.append(
            [
                f"{fraction:.0%}",
                f"{ratio:.3f}",
                f"{prediction.mean_accesses:.1f}",
                format_signed_percent(error_by_fraction[fraction]),
            ]
        )
    exact_prediction = MiniIndexModel(
        setup.predictor.c_data, setup.predictor.c_dir
    ).predict(points, workload, 0.5, np.random.default_rng(72))
    rows.append(
        [
            "exact radii",
            "1.000",
            f"{exact_prediction.mean_accesses:.1f}",
            format_signed_percent(exact_prediction.relative_error(measured)),
        ]
    )
    report(
        format_table(
            ["sample", "median radius ratio", "prediction", "rel. error"],
            rows,
            title=(
                f"Ablation -- query radii from the sample vs. the full scan "
                f"(TEXTURE60 analogue, measured {measured:.1f})"
            ),
        )
    )

    # The paper's remark: radii barely move with the sample ratio.
    for fraction, ratio in ratio_by_fraction.items():
        assert 0.9 < ratio < 1.2, (fraction, ratio)
    # Downstream predictions remain usable at moderate fractions.
    assert abs(error_by_fraction[0.5]) < 0.15
    assert abs(error_by_fraction[0.3]) < 0.20

    benchmark.pedantic(
        lambda: sampled_knn_radii(
            points[: round(points.shape[0] * 0.3)],
            workload.queries,
            workload.k,
            0.3,
        ),
        rounds=3,
        iterations=1,
    )
