"""Figure 14: index page accesses vs. number of indexed dimensions.

The multi-step NN setting of Section 6.2: the index stores only the
first m (KLT-sorted) dimensions, the object server holds full vectors.
Expected shape: index page accesses *increase* with m (points get
bigger, page capacity drops, more pages intersect the filter sphere),
and the prediction tracks the measurement closely across the sweep.
The companion object-server series (candidates passing the lower-bound
filter) decreases with m.
"""

from __future__ import annotations

import pytest

from repro.apps.dimensions import sweep_index_dimensions
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_table,
    get_setup,
)

DIMENSION_PREFIXES = (5, 10, 15, 20, 30, 45, 60)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def test_fig14_indexed_dimensions(setup, report, benchmark):
    sweep = sweep_index_dimensions(
        setup.points,
        setup.workload,
        DIMENSION_PREFIXES,
        memory=setup.predictor.memory,
        measure=True,
        candidates=True,
        seed=14,
    )
    rows = [
        [
            p.n_dimensions,
            p.c_data,
            f"{p.predicted_accesses:.1f}",
            f"{p.measured_accesses:.1f}",
            f"{p.predicted_candidates:.0f}",
            f"{p.measured_candidates:.0f}",
        ]
        for p in sweep.points
    ]
    report(
        format_table(
            ["dims", "C_data", "pred accesses", "meas accesses",
             "pred candidates", "meas candidates"],
            rows,
            title=(
                f"Figure 14 -- index page accesses vs. indexed dimensions "
                f"(TEXTURE60 analogue, N={setup.points.shape[0]:,}, "
                f"{setup.workload.n_queries} x 21-NN)"
            ),
        )
    )

    measured = [p.measured_accesses for p in sweep.points]
    predicted = [p.predicted_accesses for p in sweep.points]
    # Accesses increase with the number of indexed dimensions.
    assert measured[-1] > measured[0]
    assert predicted[-1] > predicted[0]
    # The prediction resembles the measurement closely (paper's claim).
    for p in sweep.points:
        if p.measured_accesses >= 2:
            assert abs(p.predicted_accesses - p.measured_accesses) \
                / p.measured_accesses < 0.3
    # Object-server candidates shrink as the filter gains dimensions.
    candidates = [p.measured_candidates for p in sweep.points]
    assert candidates[-1] < candidates[0]

    benchmark.pedantic(
        lambda: sweep_index_dimensions(
            setup.points, setup.workload, (30,),
            memory=setup.predictor.memory, seed=14,
        ),
        rounds=3,
        iterations=1,
    )
