"""Table 4: prediction accuracy of uniform, fractal, and resampled
models (TEXTURE60), plus the Section 5.3 very-high-dimensional check.

Expected shape: the uniform model predicts that essentially *all* leaf
pages are read (paper: 8,641 of 8,641, +1,169%); the fractal model is
also a gross overestimate (paper: 5,892, +765%); only the resampled
model lands within a few percent.  For the 360- and 617-dimensional
datasets the fractal approach is not applicable at all (N too small
relative to d) while the resampled model still predicts within a few
percent (paper: -8% .. +0.7%).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fractal import FractalCostModel, FractalEstimationError
from repro.baselines.uniform_model import UniformCostModel
from repro.core.predictor import IndexCostPredictor
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)
from repro.data import datasets
from repro.rtree.tree import RTree


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def test_tab4_texture60_comparison(setup, report, benchmark):
    predictor = setup.predictor
    topology = predictor.topology(setup.points.shape[0])
    measured = setup.measured_mean
    k = setup.workload.k

    uniform = UniformCostModel(
        setup.points.shape[0], setup.points.shape[1], topology.c_eff_data
    ).predict_knn_accesses(k)
    try:
        fractal_model = FractalCostModel.from_points(
            setup.points, topology.c_eff_data, np.random.default_rng(3)
        )
        fractal = fractal_model.predict_knn_accesses(k)
        fractal_note = f"(D0={fractal_model.d0:.4f}, D2={fractal_model.d2:.4f})"
    except FractalEstimationError as error:
        fractal, fractal_note = None, f"not applicable: {error}"
    resampled = predictor.predict(setup.points, setup.workload,
                                  method="resampled")

    rows = [
        ["Uniform", f"{uniform:.0f}",
         format_signed_percent((uniform - measured) / measured), ""],
        ["Fractal",
         f"{fractal:.0f}" if fractal is not None else "n/a",
         format_signed_percent((fractal - measured) / measured)
         if fractal is not None else "n/a",
         fractal_note],
        ["Resampled", f"{resampled.mean_accesses:.0f}",
         format_signed_percent(resampled.relative_error(measured)), ""],
        ["Measured", f"{measured:.0f}", "0%", f"{topology.n_leaves:,} leaves"],
    ]
    report(
        format_table(
            ["Method", "Pages accessed", "Rel. error", "Note"],
            rows,
            title=(
                f"Table 4 -- model comparison (TEXTURE60 analogue, "
                f"N={setup.points.shape[0]:,}, {setup.workload.n_queries} "
                f"x {k}-NN)"
            ),
        )
    )

    # Shape assertions: both baselines overestimate grossly (the uniform
    # model predicts ~all pages), the resampled model is accurate.
    assert uniform > 0.95 * topology.n_leaves
    assert (uniform - measured) / measured > 3.0
    if fractal is not None:
        assert (fractal - measured) / measured > 3.0
    assert abs(resampled.relative_error(measured)) < 0.15

    benchmark.pedantic(
        lambda: UniformCostModel(
            setup.points.shape[0], setup.points.shape[1], topology.c_eff_data
        ).predict_knn_accesses(k),
        rounds=5,
        iterations=1,
    )


@pytest.mark.parametrize("name", ["STOCK360", "ISOLET617"])
def test_tab4b_very_high_dimensional(name, report, benchmark):
    """Section 5.3: 360/617-d datasets -- fractal inapplicable, the
    sampling model still within a few percent."""
    points = datasets.load(name, scale=1.0, seed=3)
    n, dim = points.shape
    predictor = IndexCostPredictor(dim=dim, memory=10_000)
    workload = predictor.make_workload(
        points, min(experiment_queries(), 100), 21, seed=4
    )
    tree = RTree.bulk_load(points, predictor.c_data, predictor.c_dir)
    measured = float(
        np.mean(tree.leaf_accesses_for_radius(workload.queries, workload.radii))
    )

    with pytest.raises(FractalEstimationError):
        FractalCostModel.from_points(
            points, tree.topology.c_eff_data, np.random.default_rng(3)
        )

    estimate = predictor.predict(points, workload, method="resampled")
    error = estimate.relative_error(measured)
    report(
        format_table(
            ["Method", "Pages accessed", "Rel. error"],
            [
                ["Fractal", "n/a (N too small vs. d)", "n/a"],
                ["Resampled", f"{estimate.mean_accesses:.1f}",
                 format_signed_percent(error)],
                ["Measured", f"{measured:.1f}", "0%"],
            ],
            title=(
                f"Section 5.3 -- {name} analogue (N={n:,}, d={dim}; paper "
                f"reports resampled errors in -8% .. +0.7%)"
            ),
        )
    )
    # M = 10,000 exceeds these datasets' cardinality, so the sampling
    # model runs single-phase and must land within a few percent.
    assert abs(error) < 0.10

    benchmark.pedantic(
        lambda: predictor.predict(points, workload, method="resampled"),
        rounds=1,
        iterations=1,
    )
