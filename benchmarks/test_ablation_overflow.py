"""Ablation: spill-area overflow policy in the resampled predictor.

The paper's implementation *discards* points that arrive at a full
spill area (footnote 5), which biases a dense area's lower tree toward
the file's scan order.  Our default keeps a uniform *reservoir* sample
of everything streamed to the area at the same space bound.  This
ablation compares the two policies across memory budgets: identical
when nothing overflows, reservoir never worse (beyond seed noise) when
dense areas overflow heavily.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.resampled import ResampledModel
from repro.disk.device import SimulatedDisk
from repro.disk.pagefile import PointFile
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)

MEMORY_FACTORS = (1.0, 0.5, 0.25)
SEEDS = range(4)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def _run(setup, memory: int, policy: str, seed: int):
    model = ResampledModel(
        setup.predictor.c_data, setup.predictor.c_dir,
        memory=memory, overflow_policy=policy,
    )
    file = PointFile.from_points(SimulatedDisk(), setup.points)
    return model.predict(file, setup.workload, np.random.default_rng(seed))


def test_ablation_overflow_policy(setup, report, benchmark):
    measured = setup.measured_mean
    rows = []
    for factor in MEMORY_FACTORS:
        memory = max(300, int(setup.predictor.memory * factor))
        stats = {}
        for policy in ("discard", "reservoir"):
            results = [_run(setup, memory, policy, seed) for seed in SEEDS]
            errors = [abs(r.relative_error(measured)) for r in results]
            stats[policy] = (
                float(np.mean(errors)),
                int(np.mean([r.detail["n_discarded_overflow"] for r in results])),
            )
        rows.append(
            [
                f"{memory:,}",
                f"{stats['discard'][1]:,}",
                format_signed_percent(stats["discard"][0]),
                format_signed_percent(stats["reservoir"][0]),
            ]
        )
        if stats["discard"][1] == 0:
            # No overflow: the policies must coincide exactly.
            assert stats["discard"][0] == pytest.approx(
                stats["reservoir"][0], abs=1e-9
            )
    report(
        format_table(
            ["M", "overflow pts", "|err| discard (paper)", "|err| reservoir"],
            rows,
            title=(
                "Ablation -- spill-area overflow policy, resampled "
                "predictor (TEXTURE60 analogue, 4-seed mean |error|)"
            ),
        )
    )

    benchmark.pedantic(
        lambda: _run(setup, setup.predictor.memory, "reservoir", 0),
        rounds=3,
        iterations=1,
    )
