"""Table 3: relative error and measured I/O cost per method (TEXTURE60).

The paper's central table: the on-disk ground truth (build + query
I/O), the resampled predictor at h_upper in {2, 3, 4}, and the cutoff
predictor at the same heights, with signed relative errors and counted
seeks/transfers.  Expected shape: the resampled method underestimates
for small h_upper, lands within a few percent once sigma_lower reaches
1, and overestimates beyond; the cutoff method underestimates
throughout at a fraction of the I/O; both predictors are one to two-plus
orders of magnitude faster than the on-disk approach.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def test_tab3_methods_table(setup, report, benchmark):
    predictor = setup.predictor
    topology = predictor.topology(setup.points.shape[0])
    measured = setup.measured_mean
    heights = [h for h in (2, 3, 4) if h <= topology.height - 1]
    assert heights, "scaled dataset too small; raise REPRO_SCALE"

    ondisk_cost = setup.ondisk_total_cost
    rows = [
        [
            "On-disk",
            "0%",
            f"{setup.build_cost.seeks:,} + {setup.measurement.io_cost.seeks:,}",
            f"{setup.build_cost.transfers:,} + "
            f"{setup.measurement.io_cost.transfers:,}",
            f"{ondisk_cost.seconds():,.3f}",
            "",
        ]
    ]

    results = {}
    for method in ("resampled", "cutoff"):
        for h_upper in heights:
            estimate = predictor.predict(
                setup.points, setup.workload, method=method, h_upper=h_upper
            )
            results[(method, h_upper)] = estimate
            label = (
                f"{method.capitalize()} (h={h_upper}, "
                f"su={estimate.detail['sigma_upper']:.4f}"
                + (
                    f", sl={estimate.detail['sigma_lower']:.4f})"
                    if method == "resampled"
                    else ")"
                )
            )
            rows.append(
                [
                    label,
                    format_signed_percent(estimate.relative_error(measured)),
                    f"{estimate.io_cost.seeks:,}",
                    f"{estimate.io_cost.transfers:,}",
                    f"{estimate.io_cost.seconds():,.3f}",
                    f"{ondisk_cost.seconds() / estimate.io_cost.seconds():.0f}x",
                ]
            )

    report(
        format_table(
            ["Method", "Rel. error", "Page seeks", "Page transfers",
             "I/O cost (s)", "Speedup"],
            rows,
            title=(
                f"Table 3 -- TEXTURE60 analogue "
                f"(N={setup.points.shape[0]:,}, M={predictor.memory:,}, "
                f"{setup.workload.n_queries} x 21-NN, height="
                f"{topology.height}, measured mean {measured:.1f} of "
                f"{topology.n_leaves:,} leaves)"
            ),
        )
    )

    # --- Shape assertions -------------------------------------------------
    best_h = topology.best_h_upper(predictor.memory)
    best = results[("resampled", min(best_h, max(heights)))]
    # Resampled at the heuristic h_upper: within a few percent (paper: +3%).
    assert abs(best.relative_error(measured)) < 0.15
    # Section 4.5.2's regimes: strong subsampling (sigma_lower well
    # below 1) must not OVERestimate, and every resampled row stays in a
    # usable band.  (The paper's strict under->over monotone trend needs
    # its M=10,000 per-upper-leaf sample density; at reduced scale the
    # upper-tree noise can locally reorder adjacent h values.)
    for h in heights:
        error = results[("resampled", h)].relative_error(measured)
        assert abs(error) < 0.35, (h, error)
        if results[("resampled", h)].detail["sigma_lower"] < 0.3:
            assert error < 0.05, (h, error)
    # Cutoff underestimates on clustered data (paper: -64% .. -16%).
    for h_upper in heights:
        assert results[("cutoff", h_upper)].relative_error(measured) < 0.05
    # Speedups: cutoff 1-2+ orders, resampled well above 10x (paper:
    # 525-548x and 25-318x respectively).
    for h_upper in heights:
        cutoff_speedup = ondisk_cost.seconds() / results[
            ("cutoff", h_upper)
        ].io_cost.seconds()
        resampled_speedup = ondisk_cost.seconds() / results[
            ("resampled", h_upper)
        ].io_cost.seconds()
        assert cutoff_speedup > 40
        # The resampled speedup grows with N (paper: 25-318x at full
        # scale); at reduced scale the seek-bound resampling floor
        # compresses it.
        assert resampled_speedup > 5
    # On-disk queries: nearly all page accesses random (seek/xfer ~ 1).
    query_io = setup.measurement.io_cost
    assert query_io.seeks / query_io.transfers > 0.7

    benchmark.pedantic(
        lambda: predictor.predict(
            setup.points, setup.workload, method="resampled"
        ),
        rounds=3,
        iterations=1,
    )
