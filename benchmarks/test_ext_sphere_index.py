"""Extension experiment: predicting a sphere-page index (SS-tree).

Section 4.7 lists the SS- and SR-trees among the structures the
sampling technique covers.  Spheres change both the intersection test
and the shrinkage law, so this is the strongest generality check:

* measured: the SS-tree needs *more* leaf accesses than the box index
  on the same partitioning in high dimensions (spheres overlap more --
  the observation that motivated the SR-tree);
* predicted: the mini SS-tree with the spherical compensation tracks
  the measurement; the data-driven (Aitken-bootstrap) calibration beats
  the closed-form uniform-ball law on clustered data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spheres import SphereMiniIndexModel
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)
from repro.rtree.sstree import SSTree
from repro.rtree.tree import RTree

FRACTIONS = (0.15, 0.3, 0.5)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=min(0.06, experiment_scale()),
                     n_queries=min(100, experiment_queries()))


def test_ext_sphere_index_prediction(setup, report, benchmark):
    points = setup.points
    c_data, c_dir = setup.predictor.c_data, setup.predictor.c_dir
    workload = setup.workload

    spheres = SSTree.bulk_load(points, c_data, c_dir)
    boxes = RTree.bulk_load(points, c_data, c_dir)
    sphere_measured = float(
        spheres.leaf_accesses_for_radius(workload.queries, workload.radii).mean()
    )
    box_measured = float(
        boxes.leaf_accesses_for_radius(workload.queries, workload.radii).mean()
    )

    rows = [
        ["box pages (R-tree)", "measured", f"{box_measured:.1f}", ""],
        ["sphere pages (SS-tree)", "measured", f"{sphere_measured:.1f}", ""],
    ]
    errors = {}
    for fraction in FRACTIONS:
        for calibration in ("uniform", "bootstrap"):
            model = SphereMiniIndexModel(c_data, c_dir,
                                         calibration=calibration)
            result = model.predict(points, workload, fraction,
                                   np.random.default_rng(51))
            errors[(calibration, fraction)] = result.relative_error(
                sphere_measured
            )
            rows.append(
                [
                    f"sphere pages, {calibration} compensation",
                    f"sampled {fraction:.0%}",
                    f"{result.mean_accesses:.1f}",
                    format_signed_percent(errors[(calibration, fraction)]),
                ]
            )
    report(
        format_table(
            ["index / model", "source", "accesses", "rel. error"],
            rows,
            title=(
                f"Extension -- sphere-page index prediction "
                f"(TEXTURE60 analogue, N={points.shape[0]:,}, "
                f"{workload.n_queries} x {workload.k}-NN)"
            ),
        )
    )

    # Spheres overlap more than boxes in high dimensions.
    assert sphere_measured > box_measured
    # The data-driven calibration is accurate at moderate fractions...
    assert abs(errors[("bootstrap", 0.5)]) < 0.12
    assert abs(errors[("bootstrap", 0.3)]) < 0.15
    # ... and at hard fractions it beats the closed-form law, whose
    # uniform-ball assumption undershoots on clustered data.
    assert abs(errors[("bootstrap", 0.15)]) < abs(errors[("uniform", 0.15)])
    assert errors[("uniform", 0.15)] < 0

    benchmark.pedantic(
        lambda: SphereMiniIndexModel(c_data, c_dir).predict(
            points, workload, 0.3, np.random.default_rng(51)
        ),
        rounds=3,
        iterations=1,
    )
