"""Ablation: the full h_upper sweep, measured (Sections 4.5.2-4.5.3).

Beyond Table 3's three rows: every feasible upper-tree height, with the
resampled predictor's measured prediction I/O and error side by side.
Expected: sigma_lower rises with h_upper until it saturates at 1;
prediction I/O rises monotonically with h_upper (Section 4.5.3); the
error trend runs from underestimation toward overestimation
(Section 4.5.2); the Section 4.5.2 heuristic picks an h_upper whose
error is within a few points of the sweep's best.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_signed_percent,
    format_table,
    get_setup,
)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def test_ablation_h_upper_sweep(setup, report, benchmark):
    predictor = setup.predictor
    topology = predictor.topology(setup.points.shape[0])
    measured = setup.measured_mean
    heuristic = topology.best_h_upper(predictor.memory)

    rows = []
    sigmas, io_seconds, errors = [], [], []
    for h_upper in range(2, topology.height):
        estimate = predictor.predict(
            setup.points, setup.workload, method="resampled", h_upper=h_upper
        )
        sigmas.append(estimate.detail["sigma_lower"])
        io_seconds.append(estimate.io_cost.seconds())
        errors.append(estimate.relative_error(measured))
        rows.append(
            [
                f"{h_upper}{' *' if h_upper == heuristic else ''}",
                estimate.detail["k_upper_leaves"],
                f"{estimate.detail['sigma_lower']:.3f}",
                format_signed_percent(errors[-1]),
                f"{io_seconds[-1]:.2f}",
            ]
        )
    report(
        format_table(
            ["h_upper", "k", "sigma_lower", "rel. error", "pred I/O (s)"],
            rows,
            title=(
                "Ablation -- full h_upper sweep, resampled predictor "
                f"(TEXTURE60 analogue, M={predictor.memory:,}; "
                f"* = Section 4.5.2 heuristic)"
            ),
        )
    )

    # sigma_lower is non-decreasing in h_upper (Section 4.4).
    assert all(a <= b + 1e-12 for a, b in zip(sigmas, sigmas[1:]))
    # Prediction I/O rises with h_upper (Section 4.5.3).
    assert all(a <= b + 1e-9 for a, b in zip(io_seconds, io_seconds[1:]))
    # Section 4.5.2's regimes: errors stay in a usable band, and strong
    # subsampling never overestimates.  (The strict under->over monotone
    # trend needs the paper's per-upper-leaf sample density.)
    assert all(abs(e) < 0.35 for e in errors)
    for sigma, error in zip(sigmas, errors):
        if sigma < 0.3:
            assert error < 0.05, (sigma, error)
    # The heuristic lands in a usable band (it optimizes the paper's
    # error model, not this particular draw, so it may sit a few points
    # above the sweep's lucky best).
    best = min(abs(e) for e in errors)
    heuristic_error = abs(errors[heuristic - 2])
    assert heuristic_error <= max(best + 0.10, 0.15)

    benchmark.pedantic(
        lambda: predictor.predict(
            setup.points, setup.workload, method="resampled",
            h_upper=heuristic,
        ),
        rounds=3,
        iterations=1,
    )
