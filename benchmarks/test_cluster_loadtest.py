"""Cluster load test: routed throughput and the price of failover.

A sharded cluster (2 shards x 3 replicas, replication 2) and a single
service with the same total worker count serve closed-loop clients for
the same window; a third of the way in, the primary owner of shard 0 is
killed and later restarted, so the routed side's window contains a full
failover-and-recovery cycle.  The result -- routed vs single
throughput, overall and failover-only latency percentiles -- lands in
``BENCH_cluster.json`` at the repo root next to the service and kernel
benchmarks.  Assertions are availability gates, not speed gates: the
kill must cost zero errors, and the failover tail must stay finite.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster import run_cluster_loadtest
from repro.experiments import format_table

RESULT_PATH = Path(__file__).parents[1] / "BENCH_cluster.json"

DURATION_S = 1.5


def test_cluster_loadtest(report, tmp_path):
    result = run_cluster_loadtest(
        artifact_root=tmp_path, duration_s=DURATION_S, seed=0,
    )
    payload = result.as_dict()
    routed, single = payload["cluster"], payload["single"]

    rows = [
        ["routed cluster", f"{routed['throughput_rps']:,.0f}",
         f"{routed['latency_ms']['p50']:.2f}",
         f"{routed['latency_ms']['p99']:.2f}",
         f"{routed['resolved']:,}", f"{routed['errors']:,}"],
        ["single (equal workers)", f"{single['throughput_rps']:,.0f}",
         f"{single['latency_ms']['p50']:.2f}",
         f"{single['latency_ms']['p99']:.2f}",
         f"{single['resolved']:,}", "0"],
    ]
    table = format_table(
        ["configuration", "req/s", "p50 ms", "p99 ms", "resolved",
         "errors"],
        rows,
        title=f"Cluster load test ({payload['n_shards']} shards x "
              f"{payload['n_replicas']} replicas, primary killed "
              f"mid-window; failover p99 "
              f"{routed['failover_latency_ms']['p99']:.2f} ms over "
              f"{routed['failover']:,} failovers)",
    )
    report(table)
    RESULT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # availability gates: the mid-window kill cost zero errors because
    # the healthy peer absorbed shard 0's traffic
    assert routed["errors"] == 0
    assert routed["degraded"] == 0
    assert routed["failover"] > 0  # the kill window really was served
    assert routed["resolved"] > 100
    assert single["resolved"] > 100
    lat = routed["latency_ms"]
    assert 0.0 < lat["p50"] <= lat["p95"] <= lat["p99"]
    failover = routed["failover_latency_ms"]
    assert failover["p99"] > 0.0
    assert payload["router"]["unavailable"] == 0
