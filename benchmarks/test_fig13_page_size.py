"""Figure 13: determining the optimal page size (LANDSAT/TEXTURE60).

The paper sweeps index page sizes, predicts the per-query I/O cost with
the sampling model, and compares with the measured cost of a fully
built index: the model tracks the measured curve closely and both
identify the same interior optimum (64 KB for the paper's disk and
data).  Expected shape here: accesses fall with page size, cost is
U-shaped (seek-bound on the left, transfer-bound on the right), and the
predicted optimum equals the measured one.
"""

from __future__ import annotations

import pytest

from repro.apps.pagesize import sweep_page_sizes
from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_table,
    get_setup,
)

PAGE_SIZES = (4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def test_fig13_optimal_page_size(setup, report, benchmark):
    sweep = sweep_page_sizes(
        setup.points,
        setup.workload,
        memory=setup.predictor.memory,
        page_sizes=PAGE_SIZES,
        measure=True,
        seed=13,
    )
    rows = [
        [
            f"{p.page_bytes // 1024} KB",
            f"{p.predicted_accesses:.1f}",
            f"{p.predicted_seconds * 1000:.1f}",
            f"{p.measured_accesses:.1f}",
            f"{p.measured_seconds * 1000:.1f}",
        ]
        for p in sweep.points
    ]
    report(
        format_table(
            ["page size", "pred accesses", "pred ms/query",
             "meas accesses", "meas ms/query"],
            rows,
            title=(
                f"Figure 13 -- optimal page size (TEXTURE60 analogue, "
                f"N={setup.points.shape[0]:,}; predicted optimum "
                f"{sweep.predicted_optimum.page_bytes // 1024} KB, measured "
                f"optimum {sweep.measured_optimum.page_bytes // 1024} KB)"
            ),
        )
    )

    # Accesses decrease monotonically with page size (both curves).
    predicted = [p.predicted_accesses for p in sweep.points]
    measured = [p.measured_accesses for p in sweep.points]
    assert all(a >= b for a, b in zip(predicted, predicted[1:]))
    assert all(a >= b * 0.95 for a, b in zip(measured, measured[1:]))
    # The model's optimum matches the measured optimum (the headline).
    assert sweep.predicted_optimum.page_bytes == sweep.measured_optimum.page_bytes
    # The optimum is interior: neither the smallest nor the largest size.
    assert PAGE_SIZES[0] < sweep.measured_optimum.page_bytes < PAGE_SIZES[-1]
    # The model tracks the measured curve closely throughout.
    for p in sweep.points:
        if p.measured_accesses >= 2:
            assert abs(p.predicted_accesses - p.measured_accesses) \
                / p.measured_accesses < 0.3

    benchmark.pedantic(
        lambda: sweep_page_sizes(
            setup.points, setup.workload, memory=setup.predictor.memory,
            page_sizes=(8192,), seed=13,
        ),
        rounds=3,
        iterations=1,
    )
