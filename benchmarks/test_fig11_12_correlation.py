"""Figures 11 and 12: per-query correlation diagrams (TEXTURE60).

The paper correlates predicted vs. measured page accesses for each of
the 500 sample queries.  Expected shape: the resampled predictor's
points hug the diagonal (high correlation) at the larger memory size,
correlation degrades slightly at the smaller memory size, and the
cutoff predictor shows essentially no correlation -- the paper's
argument that mean relative error alone is not a sufficient quality
metric.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    experiment_queries,
    experiment_scale,
    format_table,
    get_setup,
    pearson_correlation,
)


@pytest.fixture(scope="module")
def setup():
    return get_setup("TEXTURE60", scale=experiment_scale(),
                     n_queries=experiment_queries())


def _correlate(setup, memory_divisor: int, method: str):
    predictor = setup.predictor
    memory = max(256, predictor.memory // memory_divisor)
    estimate = predictor.predict(
        setup.points,
        setup.workload,
        method=method,
        # Re-resolve h_upper for the reduced memory budget.
        h_upper=None,
        seed=11,
    ) if memory_divisor == 1 else _predict_with_memory(setup, memory, method)
    r = pearson_correlation(estimate.per_query, setup.measurement.per_query)
    return estimate, r


def _predict_with_memory(setup, memory: int, method: str):
    from repro.core.predictor import IndexCostPredictor

    predictor = IndexCostPredictor(
        dim=setup.points.shape[1],
        memory=memory,
        c_data=setup.predictor.c_data,
        c_dir=setup.predictor.c_dir,
    )
    return predictor.predict(setup.points, setup.workload, method=method, seed=11)


def test_fig11_12_correlation_diagrams(setup, report, benchmark):
    # The paper contrasts M = 10,000 (Fig. 11) with M = 1,000 (Fig. 12)
    # on N = 275k; at reduced scale the equivalent contrast is M vs M/2
    # (below ~M/4 the predictor falls off the Figure 2 cliff instead of
    # degrading gently).
    large, r_large = _correlate(setup, 1, "resampled")
    small, r_small = _correlate(setup, 2, "resampled")
    cutoff, r_cutoff = _correlate(setup, 1, "cutoff")

    # A textual rendition of the correlation diagrams: a decile summary
    # of measured vs. predicted per-query accesses.
    measured = setup.measurement.per_query
    order = np.argsort(measured)
    deciles = np.array_split(order, 10)
    rows = []
    for i, bucket in enumerate(deciles):
        rows.append(
            [
                i + 1,
                f"{measured[bucket].mean():.1f}",
                f"{large.per_query[bucket].mean():.1f}",
                f"{small.per_query[bucket].mean():.1f}",
                f"{cutoff.per_query[bucket].mean():.1f}",
            ]
        )
    summary = format_table(
        ["decile", "measured", "resampled (M)", "resampled (M/2)", "cutoff (M)"],
        rows,
        title=(
            f"Figures 11/12 -- per-query prediction vs. measurement "
            f"(TEXTURE60 analogue, mean over measured-access deciles)\n"
            f"correlation r: resampled(M={setup.predictor.memory}) = "
            f"{r_large:.3f}, resampled(M/2) = {r_small:.3f}, "
            f"cutoff = {r_cutoff:.3f}"
        ),
    )
    report(summary)

    # Shape assertions: strong correlation at full memory, mild
    # degradation with less memory, and the resampled predictor at
    # least as consistent as the cutoff.  (The paper's "no correlation
    # at all" for the cutoff is data-dependent: when the upper tree is
    # deep enough, synthesized pages inherit real geometry and can
    # correlate even while the cutoff's *mean* stays badly biased --
    # Table 3 carries that part of the claim.)
    assert r_large > 0.8
    assert r_small > 0.7
    assert r_small <= r_large + 0.02
    assert r_cutoff <= r_large + 0.02

    benchmark.pedantic(
        lambda: _correlate(setup, 1, "resampled"), rounds=3, iterations=1
    )
